// Tests for miniMPI: matching semantics, datatypes, pack/unpack, persistent
// requests, one-sided windows, communicator split, and virtual-time costs.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"

namespace {

using cid::rt::RankCtx;
using cid::simnet::MachineModel;
namespace mpi = cid::mpi;

void spmd(int nranks, const cid::rt::RankFn& fn) {
  cid::rt::run(nranks, MachineModel::zero(), fn);
}

TEST(MpiP2P, BlockingSendRecvMovesData) {
  spmd(2, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    if (ctx.rank() == 0) {
      std::vector<int> data(16);
      std::iota(data.begin(), data.end(), 100);
      mpi::send(world, data.data(), data.size(), 1, /*tag=*/7);
    } else {
      std::vector<int> data(16, 0);
      auto status = mpi::recv(world, data.data(), data.size(), 0, 7);
      EXPECT_EQ(status.source, 0);
      EXPECT_EQ(status.tag, 7);
      EXPECT_EQ(status.count, 16u);
      for (int i = 0; i < 16; ++i) EXPECT_EQ(data[i], 100 + i);
    }
  });
}

TEST(MpiP2P, NonblockingRoundtrip) {
  spmd(2, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    double value = ctx.rank() == 0 ? 3.25 : 0.0;
    double incoming = -1.0;
    const int peer = 1 - ctx.rank();
    auto recv_req = mpi::irecv(world, &incoming, 1, peer, 0);
    auto send_req = mpi::isend(world, &value, 1, peer, 0);
    mpi::wait(send_req);
    mpi::wait(recv_req);
    EXPECT_DOUBLE_EQ(incoming, ctx.rank() == 0 ? 0.0 : 3.25);
  });
}

TEST(MpiP2P, MessagesFromOneSourceDoNotOvertake) {
  spmd(2, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    if (ctx.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        mpi::send(world, &i, 1, 1, /*tag=*/5);
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        int got = -1;
        mpi::recv(world, &got, 1, 0, 5);
        EXPECT_EQ(got, i);
      }
    }
  });
}

TEST(MpiP2P, TagsSelectMessages) {
  spmd(2, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    if (ctx.rank() == 0) {
      int a = 11, b = 22;
      mpi::send(world, &a, 1, 1, /*tag=*/1);
      mpi::send(world, &b, 1, 1, /*tag=*/2);
    } else {
      int b = 0, a = 0;
      mpi::recv(world, &b, 1, 0, 2);  // out-of-order by tag
      mpi::recv(world, &a, 1, 0, 1);
      EXPECT_EQ(a, 11);
      EXPECT_EQ(b, 22);
    }
  });
}

TEST(MpiP2P, AnySourceAndAnyTag) {
  spmd(3, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    if (ctx.rank() != 0) {
      const int value = ctx.rank() * 10;
      mpi::send(world, &value, 1, 0, ctx.rank());
    } else {
      int seen_sum = 0;
      for (int i = 0; i < 2; ++i) {
        int got = 0;
        auto status =
            mpi::recv(world, &got, 1, mpi::kAnySource, mpi::kAnyTag);
        EXPECT_EQ(got, status.source * 10);
        EXPECT_EQ(status.tag, status.source);
        seen_sum += got;
      }
      EXPECT_EQ(seen_sum, 30);
    }
  });
}

TEST(MpiP2P, WaitallCompletesMixedRequests) {
  spmd(2, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    constexpr int kCount = 8;
    std::array<int, kCount> out{};
    std::array<int, kCount> in{};
    std::vector<mpi::Request> requests;
    const int peer = 1 - ctx.rank();
    for (int i = 0; i < kCount; ++i) {
      requests.push_back(mpi::irecv(world, &in[i], 1, peer, i));
    }
    for (int i = 0; i < kCount; ++i) {
      out[i] = ctx.rank() * 100 + i;
      requests.push_back(mpi::isend(world, &out[i], 1, peer, i));
    }
    mpi::waitall(requests);
    for (int i = 0; i < kCount; ++i) {
      EXPECT_EQ(in[i], peer * 100 + i);
    }
  });
}

TEST(MpiP2P, TestPollsWithoutBlocking) {
  spmd(2, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    if (ctx.rank() == 1) {
      int in = 0;
      auto req = mpi::irecv(world, &in, 1, 0, 0);
      // Poll until completion; rank 0 sends after a handshake.
      int ready = 1;
      mpi::send(world, &ready, 1, 0, 9);
      while (!mpi::test(req)) {
      }
      EXPECT_EQ(in, 42);
    } else {
      int ready = 0;
      mpi::recv(world, &ready, 1, 1, 9);
      int value = 42;
      mpi::send(world, &value, 1, 1, 0);
    }
  });
}

TEST(MpiP2P, SelfSendMatchesOwnReceive) {
  spmd(1, [](RankCtx&) {
    auto world = mpi::Comm::world();
    int out = 5, in = 0;
    auto recv_req = mpi::irecv(world, &in, 1, 0, 0);
    auto send_req = mpi::isend(world, &out, 1, 0, 0);
    mpi::wait(recv_req);
    mpi::wait(send_req);
    EXPECT_EQ(in, 5);
  });
}

TEST(MpiP2P, ShorterMessageThanCapacityReportsActualCount) {
  spmd(2, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    if (ctx.rank() == 0) {
      std::array<int, 3> out{1, 2, 3};
      mpi::send(world, out.data(), out.size(), 1, 0);
    } else {
      std::array<int, 10> in{};
      auto status = mpi::recv(world, in.data(), in.size(), 0, 0);
      EXPECT_EQ(status.count, 3u);
      EXPECT_EQ(in[2], 3);
    }
  });
}

TEST(MpiP2P, TruncationThrows) {
  EXPECT_THROW(
      spmd(2,
           [](RankCtx& ctx) {
             auto world = mpi::Comm::world();
             if (ctx.rank() == 0) {
               std::array<int, 8> out{};
               mpi::send(world, out.data(), out.size(), 1, 0);
             } else {
               std::array<int, 2> in{};
               mpi::recv(world, in.data(), in.size(), 0, 0);
             }
           }),
      cid::CidError);
}

TEST(MpiP2P, InvalidDestinationThrows) {
  EXPECT_THROW(spmd(1,
                    [](RankCtx&) {
                      auto world = mpi::Comm::world();
                      int x = 0;
                      mpi::send(world, &x, 1, 3, 0);
                    }),
               cid::CidError);
}

// ---------------------------------------------------------------------------
// Datatypes
// ---------------------------------------------------------------------------

TEST(MpiDatatype, BasicSizes) {
  EXPECT_EQ(mpi::basic_type_size(mpi::BasicType::Double), sizeof(double));
  EXPECT_EQ(mpi::basic_type_size(mpi::BasicType::Int), sizeof(int));
  EXPECT_EQ(mpi::basic_type_size(mpi::BasicType::Char), 1u);
  EXPECT_EQ(mpi::datatype_of<double>().extent(), sizeof(double));
  EXPECT_TRUE(mpi::datatype_of<long>().is_contiguous());
}

struct PaddedStruct {
  char c;      // offset 0
  // 7 bytes padding
  double d;    // offset 8
  int i;       // offset 16
  // 4 bytes tail padding
};

TEST(MpiDatatype, StructGatherScatterRoundTrips) {
  auto dtype_result = mpi::Datatype::create_struct(
      {{offsetof(PaddedStruct, c), 1, mpi::BasicType::Char},
       {offsetof(PaddedStruct, d), 1, mpi::BasicType::Double},
       {offsetof(PaddedStruct, i), 1, mpi::BasicType::Int}},
      sizeof(PaddedStruct));
  ASSERT_TRUE(dtype_result.is_ok());
  auto dtype = std::move(dtype_result).take();
  dtype.commit();
  EXPECT_FALSE(dtype.is_contiguous());
  EXPECT_EQ(dtype.payload_size(), 1 + sizeof(double) + sizeof(int));
  EXPECT_EQ(dtype.extent(), sizeof(PaddedStruct));

  std::array<PaddedStruct, 3> in{};
  for (int k = 0; k < 3; ++k) {
    in[static_cast<std::size_t>(k)] = {static_cast<char>('a' + k),
                                       1.5 * k, 10 * k};
  }
  auto wire = dtype.gather(in.data(), in.size());
  EXPECT_EQ(wire.size(), dtype.payload_size() * 3);

  std::array<PaddedStruct, 3> out{};
  ASSERT_TRUE(dtype
                  .scatter(cid::ByteSpan(wire.data(), wire.size()),
                           out.data(), out.size())
                  .is_ok());
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(out[static_cast<std::size_t>(k)].c, 'a' + k);
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(k)].d, 1.5 * k);
    EXPECT_EQ(out[static_cast<std::size_t>(k)].i, 10 * k);
  }
}

TEST(MpiDatatype, StructSendRecvAcrossRanks) {
  spmd(2, [](RankCtx& ctx) {
    auto dtype = mpi::Datatype::create_struct(
                     {{offsetof(PaddedStruct, c), 1, mpi::BasicType::Char},
                      {offsetof(PaddedStruct, d), 1, mpi::BasicType::Double},
                      {offsetof(PaddedStruct, i), 1, mpi::BasicType::Int}},
                     sizeof(PaddedStruct))
                     .take();
    dtype.commit();
    auto world = mpi::Comm::world();
    if (ctx.rank() == 0) {
      PaddedStruct s{'x', 2.75, 99};
      mpi::send(world, &s, 1, dtype, 1, 0);
    } else {
      PaddedStruct s{};
      mpi::recv(world, &s, 1, dtype, 0, 0);
      EXPECT_EQ(s.c, 'x');
      EXPECT_DOUBLE_EQ(s.d, 2.75);
      EXPECT_EQ(s.i, 99);
    }
  });
}

TEST(MpiDatatype, RejectsOverlappingFields) {
  auto result = mpi::Datatype::create_struct(
      {{0, 2, mpi::BasicType::Int}, {4, 1, mpi::BasicType::Int}}, 16);
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), cid::ErrorCode::TypeError);
}

TEST(MpiDatatype, RejectsFieldPastExtent) {
  auto result = mpi::Datatype::create_struct(
      {{8, 4, mpi::BasicType::Double}}, 16);
  EXPECT_FALSE(result.is_ok());
}

TEST(MpiDatatype, RejectsEmptyStruct) {
  auto result = mpi::Datatype::create_struct({}, 8);
  EXPECT_FALSE(result.is_ok());
}

TEST(MpiDatatype, UncommittedTypeCannotBeSent) {
  EXPECT_THROW(
      spmd(1,
           [](RankCtx&) {
             auto dtype =
                 mpi::Datatype::create_struct({{0, 1, mpi::BasicType::Int}}, 4)
                     .take();
             int x = 0;
             mpi::send(mpi::Comm::world(), &x, 1, dtype, 0, 0);
           }),
      cid::CidError);
}

namespace strided {

/// Build a "strided column" struct type: `runs` equal-size byte runs of
/// `run_bytes` each, the first at offset `first`, each `stride` bytes after
/// the previous. run_bytes must be a multiple of 4 (fields are built from
/// Int blocks so any width is expressible).
mpi::Datatype make_column(std::size_t runs, std::size_t run_bytes,
                          std::size_t stride, std::size_t first,
                          std::size_t extent) {
  std::vector<mpi::TypeField> fields;
  for (std::size_t r = 0; r < runs; ++r) {
    fields.push_back(
        {first + r * stride, run_bytes / sizeof(int), mpi::BasicType::Int});
  }
  auto dtype = mpi::Datatype::create_struct(std::move(fields), extent).take();
  dtype.commit();
  return dtype;
}

/// The obviously-correct pack: walk every element, memcpy every run. Both
/// the uniform-runs fast path and the PackRun slow path must match this.
cid::ByteBuffer reference_pack(const std::byte* src, std::size_t count,
                               std::size_t extent, std::size_t runs,
                               std::size_t run_bytes, std::size_t stride,
                               std::size_t first) {
  cid::ByteBuffer wire(count * runs * run_bytes);
  std::byte* out = wire.data();
  for (std::size_t e = 0; e < count; ++e) {
    for (std::size_t r = 0; r < runs; ++r) {
      std::memcpy(out, src + e * extent + first + r * stride, run_bytes);
      out += run_bytes;
    }
  }
  return wire;
}

/// Gather `count` elements through `dtype` and check the wire bytes against
/// the reference pack, then scatter back into a poisoned buffer and check
/// that exactly the run bytes were rewritten.
void check_roundtrip(std::size_t runs, std::size_t run_bytes,
                     std::size_t stride, std::size_t first,
                     std::size_t extent, std::size_t count = 5) {
  SCOPED_TRACE(testing::Message() << runs << " runs of " << run_bytes
                                  << "B at stride " << stride);
  auto dtype = make_column(runs, run_bytes, stride, first, extent);
  ASSERT_EQ(dtype.payload_size(), runs * run_bytes);
  ASSERT_EQ(dtype.extent(), extent);

  std::vector<std::byte> src(count * extent);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>((i * 131 + 7) & 0xff);
  }

  auto wire = dtype.gather(src.data(), count);
  auto expect = reference_pack(src.data(), count, extent, runs, run_bytes,
                               stride, first);
  ASSERT_EQ(wire.size(), expect.size());
  EXPECT_EQ(std::memcmp(wire.data(), expect.data(), wire.size()), 0);

  std::vector<std::byte> dst(count * extent, std::byte{0xee});
  ASSERT_TRUE(dtype
                  .scatter(cid::ByteSpan(wire.data(), wire.size()),
                           dst.data(), count)
                  .is_ok());
  for (std::size_t e = 0; e < count; ++e) {
    for (std::size_t off = 0; off < extent; ++off) {
      const std::size_t i = e * extent + off;
      const bool in_run = off >= first && (off - first) % stride < run_bytes &&
                          (off - first) / stride < runs;
      if (in_run) {
        EXPECT_EQ(dst[i], src[i]) << "run byte not round-tripped at " << i;
      } else {
        EXPECT_EQ(dst[i], std::byte{0xee}) << "gap byte clobbered at " << i;
      }
    }
  }
}

}  // namespace strided

// Each width below lands on a different copy_runs dispatch: 4/8/16 get the
// fixed-size fast loops, 12 falls through to the default memcpy loop.
TEST(MpiDatatype, Strided4ByteRunsMatchReferencePack) {
  strided::check_roundtrip(/*runs=*/6, /*run_bytes=*/4, /*stride=*/16,
                           /*first=*/0, /*extent=*/96);
}

TEST(MpiDatatype, Strided8ByteRunsMatchReferencePack) {
  // The bench_hotpath make_strided_struct shape: one double per 16B row.
  strided::check_roundtrip(/*runs=*/8, /*run_bytes=*/8, /*stride=*/16,
                           /*first=*/0, /*extent=*/128);
}

TEST(MpiDatatype, Strided16ByteRunsMatchReferencePack) {
  strided::check_roundtrip(/*runs=*/4, /*run_bytes=*/16, /*stride=*/24,
                           /*first=*/0, /*extent=*/96);
}

TEST(MpiDatatype, StridedWideRunsMatchReferencePack) {
  strided::check_roundtrip(/*runs=*/4, /*run_bytes=*/12, /*stride=*/32,
                           /*first=*/0, /*extent=*/128);
}

TEST(MpiDatatype, StridedRunsWithLeadingGapMatchReferencePack) {
  // first != 0 exercises the run_first offset in the fast path.
  strided::check_roundtrip(/*runs=*/5, /*run_bytes=*/8, /*stride=*/16,
                           /*first=*/8, /*extent=*/88);
}

TEST(MpiDatatype, IrregularOffsetsStillPackCorrectly) {
  // Same-size runs at non-arithmetic offsets: uniform-runs detection must
  // reject this shape and the PackRun walk must still match a reference.
  std::vector<mpi::TypeField> fields = {{0, 1, mpi::BasicType::Int},
                                        {16, 1, mpi::BasicType::Int},
                                        {24, 1, mpi::BasicType::Int}};
  auto dtype = mpi::Datatype::create_struct(fields, 32).take();
  dtype.commit();

  const std::size_t count = 4;
  std::vector<std::byte> src(count * 32);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i * 37 + 1);
  }
  auto wire = dtype.gather(src.data(), count);
  ASSERT_EQ(wire.size(), count * 12);
  std::byte* out = wire.data();
  for (std::size_t e = 0; e < count; ++e) {
    for (std::size_t off : {0u, 16u, 24u}) {
      EXPECT_EQ(std::memcmp(out, src.data() + e * 32 + off, 4), 0);
      out += 4;
    }
  }

  std::vector<std::byte> dst(count * 32, std::byte{0});
  ASSERT_TRUE(dtype
                  .scatter(cid::ByteSpan(wire.data(), wire.size()),
                           dst.data(), count)
                  .is_ok());
  for (std::size_t e = 0; e < count; ++e) {
    for (std::size_t off : {0u, 16u, 24u}) {
      EXPECT_EQ(std::memcmp(dst.data() + e * 32 + off,
                            src.data() + e * 32 + off, 4),
                0);
    }
  }
}

TEST(MpiDatatype, StridedTypeSendRecvAcrossRanks) {
  // The fast path through the actual wire: a strided column sent rank 0 -> 1
  // must land field-for-field.
  spmd(2, [](RankCtx& ctx) {
    auto dtype = strided::make_column(/*runs=*/4, /*run_bytes=*/8,
                                      /*stride=*/16, /*first=*/0,
                                      /*extent=*/64);
    auto world = mpi::Comm::world();
    std::array<double, 8> block{};  // 64 bytes; doubles at even indices ship
    if (ctx.rank() == 0) {
      for (std::size_t i = 0; i < block.size(); ++i) {
        block[i] = 1.25 * static_cast<double>(i) + 0.5;
      }
      mpi::send(world, block.data(), 1, dtype, 1, 3);
    } else {
      mpi::recv(world, block.data(), 1, dtype, 0, 3);
      for (std::size_t i = 0; i < block.size(); ++i) {
        const double want =
            (i % 2 == 0) ? 1.25 * static_cast<double>(i) + 0.5 : 0.0;
        EXPECT_DOUBLE_EQ(block[i], want);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Pack / Unpack
// ---------------------------------------------------------------------------

TEST(MpiPack, PackUnpackRoundTrip) {
  spmd(1, [](RankCtx&) {
    auto world = mpi::Comm::world();
    std::vector<std::byte> buffer(256);
    std::size_t position = 0;
    int i = 42;
    double d = 6.5;
    std::array<char, 5> text{'h', 'e', 'l', 'l', 'o'};
    mpi::pack(world, &i, 1, buffer, position);
    mpi::pack(world, &d, 1, buffer, position);
    mpi::pack(world, text.data(), text.size(), buffer, position);
    EXPECT_EQ(position, sizeof(int) + sizeof(double) + 5);

    std::size_t read = 0;
    int i2 = 0;
    double d2 = 0;
    std::array<char, 5> text2{};
    mpi::unpack(world, cid::ByteSpan(buffer.data(), buffer.size()), read, &i2,
                1);
    mpi::unpack(world, cid::ByteSpan(buffer.data(), buffer.size()), read, &d2,
                1);
    mpi::unpack(world, cid::ByteSpan(buffer.data(), buffer.size()), read,
                text2.data(), text2.size());
    EXPECT_EQ(i2, 42);
    EXPECT_DOUBLE_EQ(d2, 6.5);
    EXPECT_EQ(text2, text);
  });
}

TEST(MpiPack, OverflowThrows) {
  EXPECT_THROW(spmd(1,
                    [](RankCtx&) {
                      auto world = mpi::Comm::world();
                      std::vector<std::byte> tiny(4);
                      std::size_t position = 0;
                      double d = 1.0;
                      mpi::pack(world, &d, 1, tiny, position);
                    }),
               cid::CidError);
}

TEST(MpiPack, PackedSendMatchesListing4Shape) {
  // The original WL-LSMS pattern: pack several fields, send as bytes, unpack.
  spmd(2, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    constexpr std::size_t kSize = 64;
    if (ctx.rank() == 0) {
      std::vector<std::byte> buffer(kSize);
      std::size_t position = 0;
      int id = 17;
      double alat = 5.4;
      mpi::pack(world, &id, 1, buffer, position);
      mpi::pack(world, &alat, 1, buffer, position);
      mpi::send(world, buffer.data(), position,
                mpi::Datatype::basic(mpi::BasicType::Packed), 1, 0);
    } else {
      std::vector<std::byte> buffer(kSize);
      auto status = mpi::recv(world, buffer.data(), buffer.size(),
                              mpi::Datatype::basic(mpi::BasicType::Packed), 0,
                              0);
      std::size_t position = 0;
      int id = 0;
      double alat = 0;
      mpi::unpack(world, cid::ByteSpan(buffer.data(), status.count), position,
                  &id, 1);
      mpi::unpack(world, cid::ByteSpan(buffer.data(), status.count), position,
                  &alat, 1);
      EXPECT_EQ(id, 17);
      EXPECT_DOUBLE_EQ(alat, 5.4);
    }
  });
}

// ---------------------------------------------------------------------------
// Persistent requests
// ---------------------------------------------------------------------------

TEST(MpiPersistent, StartWaitRestartCycle) {
  spmd(2, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    int payload = 0;
    if (ctx.rank() == 0) {
      auto req = mpi::send_init(world, &payload, 1,
                                mpi::datatype_of<int>(), 1, 3);
      for (int i = 0; i < 4; ++i) {
        payload = i * i;
        mpi::start(req);
        mpi::wait(req);
      }
    } else {
      auto req = mpi::recv_init(world, &payload, 1,
                                mpi::datatype_of<int>(), 0, 3);
      for (int i = 0; i < 4; ++i) {
        mpi::start(req);
        mpi::wait(req);
        EXPECT_EQ(payload, i * i);
      }
    }
  });
}

TEST(MpiPersistent, RebindMovesThroughArray) {
  spmd(2, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    std::array<double, 6> data{};
    if (ctx.rank() == 0) {
      for (int i = 0; i < 6; ++i) data[static_cast<std::size_t>(i)] = i + 0.5;
      auto req = mpi::send_init(world, &data[0], 2,
                                mpi::datatype_of<double>(), 1, 0);
      for (int i = 0; i < 3; ++i) {
        mpi::rebind_send(req, &data[static_cast<std::size_t>(2 * i)], 2);
        mpi::start(req);
        mpi::wait(req);
      }
    } else {
      auto req = mpi::recv_init(world, &data[0], 2,
                                mpi::datatype_of<double>(), 0, 0);
      for (int i = 0; i < 3; ++i) {
        mpi::rebind_recv(req, &data[static_cast<std::size_t>(2 * i)], 2);
        mpi::start(req);
        mpi::wait(req);
      }
      for (int i = 0; i < 6; ++i) {
        EXPECT_DOUBLE_EQ(data[static_cast<std::size_t>(i)], i + 0.5);
      }
    }
  });
}

TEST(MpiPersistent, DoubleStartThrows) {
  // The matching message never arrives, so the first start leaves the
  // request active and the second start must be rejected.
  EXPECT_THROW(
      spmd(2,
           [](RankCtx& ctx) {
             auto world = mpi::Comm::world();
             int x = 0;
             if (ctx.rank() == 1) {
               auto req = mpi::recv_init(world, &x, 1,
                                         mpi::datatype_of<int>(), 0, 0);
               mpi::start(req);
               mpi::start(req);
             }
           }),
      cid::CidError);
}

TEST(MpiPersistent, RebindActiveRequestThrows) {
  EXPECT_THROW(
      spmd(1,
           [](RankCtx&) {
             auto world = mpi::Comm::world();
             int x = 0;
             auto req = mpi::recv_init(world, &x, 1,
                                       mpi::datatype_of<int>(), 0, 0);
             mpi::start(req);
             mpi::rebind_recv(req, &x, 1);
           }),
      cid::CidError);
}

// ---------------------------------------------------------------------------
// One-sided
// ---------------------------------------------------------------------------

TEST(MpiWin, PutThenFenceDeliversData) {
  spmd(3, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    std::array<int, 4> window_mem{};
    auto win = mpi::Win::create(world, window_mem.data(),
                                window_mem.size() * sizeof(int));
    if (ctx.rank() == 0) {
      std::array<int, 4> origin{10, 11, 12, 13};
      win.put(origin.data(), 4, mpi::datatype_of<int>(), 2, 0);
    }
    win.fence();
    if (ctx.rank() == 2) {
      EXPECT_EQ(window_mem[0], 10);
      EXPECT_EQ(window_mem[3], 13);
    } else {
      EXPECT_EQ(window_mem[0], 0);
    }
  });
}

TEST(MpiWin, PutWithDisplacement) {
  spmd(2, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    std::array<double, 8> window_mem{};
    auto win = mpi::Win::create(world, window_mem.data(),
                                window_mem.size() * sizeof(double));
    if (ctx.rank() == 0) {
      double value = 2.5;
      win.put(&value, 1, mpi::datatype_of<double>(), 1, 3 * sizeof(double));
    }
    win.fence();
    if (ctx.rank() == 1) {
      EXPECT_DOUBLE_EQ(window_mem[3], 2.5);
      EXPECT_DOUBLE_EQ(window_mem[2], 0.0);
    }
  });
}

TEST(MpiWin, PutPastWindowEndThrows) {
  EXPECT_THROW(spmd(2,
                    [](RankCtx& ctx) {
                      auto world = mpi::Comm::world();
                      std::array<int, 2> mem{};
                      auto win = mpi::Win::create(world, mem.data(),
                                                  sizeof(mem));
                      if (ctx.rank() == 0) {
                        std::array<int, 4> origin{};
                        win.put(origin.data(), 4, mpi::datatype_of<int>(), 1,
                                0);
                      }
                      win.fence();
                    }),
               cid::CidError);
}

// ---------------------------------------------------------------------------
// Communicators
// ---------------------------------------------------------------------------

TEST(MpiComm, WorldIdentity) {
  spmd(4, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    EXPECT_EQ(world.rank(), ctx.rank());
    EXPECT_EQ(world.size(), 4);
    EXPECT_EQ(world.context(), 0);
    EXPECT_EQ(world.world_rank(2), 2);
  });
}

TEST(MpiComm, SplitByParity) {
  spmd(6, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    auto sub = world.split(ctx.rank() % 2, ctx.rank());
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.world_rank(sub.rank()), ctx.rank());
    // Members are ordered by key (== world rank here).
    EXPECT_EQ(sub.rank(), ctx.rank() / 2);
    // Traffic on the subcommunicator is isolated from world traffic.
    if (sub.rank() == 0) {
      int value = 1000 + ctx.rank() % 2;
      mpi::send(sub, &value, 1, 1, 0);
    } else if (sub.rank() == 1) {
      int got = 0;
      mpi::recv(sub, &got, 1, 0, 0);
      EXPECT_EQ(got, 1000 + ctx.rank() % 2);
    }
  });
}

TEST(MpiComm, SplitWithUndefinedColorYieldsInvalid) {
  spmd(4, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    auto sub = world.split(ctx.rank() == 0 ? -1 : 0, ctx.rank());
    if (ctx.rank() == 0) {
      EXPECT_FALSE(sub.valid());
    } else {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.size(), 3);
    }
  });
}

TEST(MpiComm, SplitKeyOrdersRanks) {
  spmd(4, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    // Reverse ordering via descending keys.
    auto sub = world.split(0, 100 - ctx.rank());
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.rank(), 3 - ctx.rank());
  });
}

TEST(MpiComm, NestedSplit) {
  spmd(8, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    auto half = world.split(ctx.rank() / 4, ctx.rank());
    auto quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    EXPECT_EQ(quarter.world_rank(quarter.rank()), ctx.rank());
  });
}

TEST(MpiComm, BarrierOnSubcommunicator) {
  cid::rt::run(4, MachineModel::cray_xk7_gemini(), [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    auto sub = world.split(ctx.rank() % 2, ctx.rank());
    ctx.charge_compute(static_cast<double>(ctx.rank()) * 1e-3);
    sub.barrier();
    // Even group max = 2ms, odd group max = 3ms.
    const double expected = (ctx.rank() % 2 == 0 ? 2e-3 : 3e-3);
    EXPECT_GT(ctx.clock().now(), expected);
    EXPECT_LT(ctx.clock().now(), expected + 1e-4);
  });
}

// ---------------------------------------------------------------------------
// Virtual-time behaviour
// ---------------------------------------------------------------------------

TEST(MpiTime, MessageDeliveryChargesLatencyAndBandwidth) {
  const auto model = MachineModel::cray_xk7_gemini();
  cid::rt::run(2, model, [&](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    std::vector<double> data(256);
    if (ctx.rank() == 0) {
      mpi::send(world, data.data(), data.size(), 1, 0);
    } else {
      mpi::recv(world, data.data(), data.size(), 0, 0);
      const auto& path = model.mpi_two_sided;
      const double bytes = 256 * sizeof(double);
      const double expected_min =
          path.send_overhead + path.latency + bytes / path.bytes_per_second;
      EXPECT_GE(ctx.clock().now(), expected_min);
    }
  });
}

TEST(MpiTime, WaitLoopCostsMoreThanWaitall) {
  const auto model = MachineModel::cray_xk7_gemini();
  constexpr int kMessages = 64;

  auto run_receiver = [&](bool use_waitall) {
    auto result = cid::rt::run(2, model, [&](RankCtx& ctx) {
      auto world = mpi::Comm::world();
      std::vector<double> data(3 * kMessages);
      if (ctx.rank() == 0) {
        std::vector<mpi::Request> reqs;
        for (int i = 0; i < kMessages; ++i) {
          reqs.push_back(mpi::isend(world, &data[3 * i], 3, 1, i));
        }
        mpi::waitall(reqs);
      } else {
        std::vector<mpi::Request> reqs;
        for (int i = 0; i < kMessages; ++i) {
          reqs.push_back(mpi::irecv(world, &data[3 * i], 3, 0, i));
        }
        if (use_waitall) {
          mpi::waitall(reqs);
        } else {
          for (auto& req : reqs) mpi::wait(req);
        }
      }
    });
    return result.makespan();
  };

  const double loop_time = run_receiver(false);
  const double waitall_time = run_receiver(true);
  EXPECT_LT(waitall_time, loop_time);
  // The gap is on the order of kMessages * wait_single (the makespan is a
  // max over ranks, so the sender can cap part of the benefit).
  const double naive_gap =
      kMessages * model.mpi_two_sided.wait_single -
      (model.mpi_two_sided.waitall_base +
       kMessages * model.mpi_two_sided.waitall_per_request);
  EXPECT_GT(loop_time - waitall_time, 0.5 * naive_gap);
  EXPECT_LT(loop_time - waitall_time, 1.2 * naive_gap);
}

TEST(MpiTime, PersistentStartIsCheaperThanIsend) {
  const auto model = MachineModel::cray_xk7_gemini();
  EXPECT_LT(model.mpi_two_sided.persistent_send_overhead,
            model.mpi_two_sided.send_overhead);
  EXPECT_LT(model.mpi_two_sided.persistent_recv_overhead,
            model.mpi_two_sided.recv_overhead);
}

TEST(MpiTime, RendezvousAddsLatencyAboveEagerThreshold) {
  const auto model = MachineModel::cray_xk7_gemini();
  const auto& path = model.mpi_two_sided;
  const std::size_t small = path.eager_threshold_bytes;
  const double t_small = path.delivery_time(0.0, small);
  const double t_large = path.delivery_time(0.0, small + 1);
  EXPECT_GT(t_large - t_small, path.rendezvous_extra_latency * 0.99);
}

}  // namespace

// ---------------------------------------------------------------------------
// Sendrecv / probe (added with the halo-exchange support surface)
// ---------------------------------------------------------------------------

namespace {

TEST(MpiSendrecv, ShiftPatternDoesNotDeadlock) {
  spmd(5, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    const int next = (ctx.rank() + 1) % ctx.nranks();
    const int prev = (ctx.rank() - 1 + ctx.nranks()) % ctx.nranks();
    std::array<double, 3> out{ctx.rank() + 0.1, ctx.rank() + 0.2,
                              ctx.rank() + 0.3};
    std::array<double, 3> in{};
    auto status = mpi::sendrecv(world, out.data(), 3,
                                mpi::datatype_of<double>(), next, 0,
                                in.data(), 3, mpi::datatype_of<double>(),
                                prev, 0);
    EXPECT_EQ(status.source, prev);
    EXPECT_EQ(status.count, 3u);
    EXPECT_DOUBLE_EQ(in[0], prev + 0.1);
    EXPECT_DOUBLE_EQ(in[2], prev + 0.3);
  });
}

TEST(MpiProbe, ProbeReportsCountWithoutConsuming) {
  spmd(2, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    if (ctx.rank() == 0) {
      std::array<int, 6> data{1, 2, 3, 4, 5, 6};
      mpi::send(world, data.data(), data.size(), 1, 42);
    } else {
      auto status = mpi::probe(world, 0, 42, mpi::datatype_of<int>());
      EXPECT_EQ(status.source, 0);
      EXPECT_EQ(status.tag, 42);
      EXPECT_EQ(status.count, 6u);
      // The message is still receivable (probe did not consume it).
      std::vector<int> in(status.count);
      mpi::recv(world, in.data(), in.size(), 0, 42);
      EXPECT_EQ(in[5], 6);
    }
  });
}

TEST(MpiProbe, IprobeIsNonblocking) {
  spmd(2, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    if (ctx.rank() == 1) {
      mpi::RecvStatus status;
      // Nothing sent yet.
      EXPECT_FALSE(mpi::iprobe(world, 0, 7, mpi::datatype_of<double>(),
                               &status));
      int ready = 1;
      mpi::send(world, &ready, 1, 0, 9);
      // Wait for the real message via blocking probe, then iprobe hits.
      mpi::probe(world, 0, 7, mpi::datatype_of<double>());
      EXPECT_TRUE(mpi::iprobe(world, 0, 7, mpi::datatype_of<double>(),
                              &status));
      EXPECT_EQ(status.count, 2u);
      std::array<double, 2> in{};
      mpi::recv(world, in.data(), 2, 0, 7);
      EXPECT_DOUBLE_EQ(in[1], 8.5);
    } else {
      int ready = 0;
      mpi::recv(world, &ready, 1, 1, 9);
      std::array<double, 2> payload{7.5, 8.5};
      mpi::send(world, payload.data(), 2, 1, 7);
    }
  });
}

TEST(MpiProbe, ProbeWithWildcards) {
  spmd(3, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    if (ctx.rank() != 0) {
      const int value = ctx.rank();
      mpi::send(world, &value, 1, 0, ctx.rank() * 10);
    } else {
      for (int i = 0; i < 2; ++i) {
        auto status = mpi::probe(world, mpi::kAnySource, mpi::kAnyTag,
                                 mpi::datatype_of<int>());
        EXPECT_EQ(status.tag, status.source * 10);
        int got = 0;
        mpi::recv(world, &got, 1, status.source, status.tag);
        EXPECT_EQ(got, status.source);
      }
    }
  });
}

}  // namespace

namespace {

TEST(MpiWaitany, ReturnsFirstCompleted) {
  spmd(3, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    if (ctx.rank() == 0) {
      int early = 0, late = 0;
      std::vector<mpi::Request> reqs;
      reqs.push_back(mpi::irecv(world, &late, 1, 2, 0));
      reqs.push_back(mpi::irecv(world, &early, 1, 1, 0));
      const int first = mpi::waitany(reqs);
      EXPECT_EQ(first, 1);  // rank 1 sends immediately
      EXPECT_EQ(early, 111);
      int go = 1;
      mpi::send(world, &go, 1, 2, 9);
      const int second = mpi::waitany(reqs);
      EXPECT_EQ(second, 0);
      EXPECT_EQ(late, 222);
    } else if (ctx.rank() == 1) {
      int v = 111;
      mpi::send(world, &v, 1, 0, 0);
    } else {
      int go = 0;
      mpi::recv(world, &go, 1, 0, 9);  // wait until rank 0 consumed #1
      int v = 222;
      mpi::send(world, &v, 1, 0, 0);
    }
  });
}

TEST(MpiWaitany, AllInvalidReturnsMinusOne) {
  spmd(1, [](RankCtx&) {
    std::vector<mpi::Request> reqs(3);  // all null
    EXPECT_EQ(mpi::waitany(reqs), -1);
  });
}

TEST(MpiWaitsome, CollectsReadyBatch) {
  spmd(2, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    if (ctx.rank() == 0) {
      std::array<int, 4> in{};
      std::vector<mpi::Request> reqs;
      for (int i = 0; i < 4; ++i) {
        reqs.push_back(mpi::irecv(world, &in[i], 1, 1, i));
      }
      std::vector<int> ready;
      int total = 0;
      while (total < 4) {
        total += mpi::waitsome(reqs, ready);
      }
      EXPECT_EQ(ready.size(), 4u);
      for (int i = 0; i < 4; ++i) EXPECT_EQ(in[i], 40 + i);
    } else {
      for (int i = 0; i < 4; ++i) {
        int v = 40 + i;
        mpi::send(world, &v, 1, 0, i);
      }
    }
  });
}

}  // namespace
