// Tests for the common module: Status/Result, Matrix, RNG determinism,
// string utilities, byte-range helpers.
#include <gtest/gtest.h>

#include <set>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace {

using namespace cid;

// --- Status / Result ---------------------------------------------------------

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::Ok);
  EXPECT_EQ(status.to_string(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status status(ErrorCode::InvalidClause, "bad clause");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::InvalidClause);
  EXPECT_EQ(status.to_string(), "INVALID_CLAUSE: bad clause");
}

TEST(Status, EveryCodeHasAName) {
  for (ErrorCode code :
       {ErrorCode::Ok, ErrorCode::InvalidArgument, ErrorCode::InvalidClause,
        ErrorCode::ParseError, ErrorCode::TypeError,
        ErrorCode::UnsupportedTarget, ErrorCode::RuntimeFault,
        ErrorCode::IoError}) {
    EXPECT_FALSE(error_code_name(code).empty());
    EXPECT_NE(error_code_name(code), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().is_ok());
}

TEST(Result, HoldsStatus) {
  Result<int> result(Status(ErrorCode::ParseError, "nope"));
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), ErrorCode::ParseError);
  EXPECT_THROW(result.value(), std::logic_error);
}

TEST(Result, TakeMovesValue) {
  Result<std::string> result(std::string(100, 'x'));
  std::string taken = std::move(result).take();
  EXPECT_EQ(taken.size(), 100u);
}

TEST(CidError, RequireMacroAddsLocation) {
  try {
    CID_REQUIRE(1 == 2, ErrorCode::InvalidArgument, "arithmetic broke");
    FAIL();
  } catch (const CidError& error) {
    EXPECT_EQ(error.code(), ErrorCode::InvalidArgument);
    const std::string what = error.what();
    EXPECT_NE(what.find("arithmetic broke"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

// --- Matrix -------------------------------------------------------------------

TEST(Matrix, ColumnMajorLayout) {
  Matrix<int> m(3, 2);
  int v = 0;
  for (std::size_t j = 0; j < 2; ++j) {
    for (std::size_t i = 0; i < 3; ++i) m(i, j) = v++;
  }
  // Column-major: data[] holds column 0 then column 1.
  EXPECT_EQ(m.data()[0], 0);
  EXPECT_EQ(m.data()[2], 2);
  EXPECT_EQ(m.data()[3], 3);
  EXPECT_EQ(&m(0, 1), m.data() + 3);
  EXPECT_EQ(m.n_row(), 3u);
  EXPECT_EQ(m.size(), 6u);
}

TEST(Matrix, ResizePreservesWindow) {
  Matrix<double> m(2, 2);
  m(0, 0) = 1.0;
  m(1, 1) = 4.0;
  m.resize(4, 3, -1.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(m(3, 2), -1.0);
  m.resize(1, 1);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m.size(), 1u);
}

TEST(Matrix, OutOfRangeThrows) {
  Matrix<int> m(2, 2);
  EXPECT_THROW(m(2, 0), CidError);
  EXPECT_THROW(m(0, 2), CidError);
}

TEST(Matrix, EqualityIsElementwise) {
  Matrix<int> a(2, 2, 7);
  Matrix<int> b(2, 2, 7);
  EXPECT_TRUE(a == b);
  b(1, 1) = 8;
  EXPECT_FALSE(a == b);
  Matrix<int> c(2, 3, 7);
  EXPECT_FALSE(a == c);
}

// --- RNG ----------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    (void)c.next_u64();
  }
  Rng a2(123), c2(124);
  EXPECT_NE(a2.next_u64(), c2.next_u64());
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit over 1000 draws
}

TEST(Rng, ForRankStreamsAreReproducibleAndDecorrelated) {
  // Same (base, rank) -> identical stream.
  Rng a = Rng::for_rank(42, 3);
  Rng b = Rng::for_rank(42, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());

  // Adjacent ranks and adjacent base seeds give different streams, including
  // the cross pairs (base, rank+1) vs (base+1, rank).
  std::set<std::uint64_t> firsts;
  for (std::uint64_t base : {42u, 43u}) {
    for (int rank : {0, 1, 2, 3}) {
      firsts.insert(Rng::for_rank(base, rank).next_u64());
    }
  }
  EXPECT_EQ(firsts.size(), 8u);
}

// --- strings -------------------------------------------------------------------

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\n x \r\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("nospace"), "nospace");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, SplitTopLevelRespectsNesting) {
  const auto parts = split_top_level("f(a,b), c[d,e], {g,h}, i", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(trim(parts[0]), "f(a,b)");
  EXPECT_EQ(trim(parts[1]), "c[d,e]");
  EXPECT_EQ(trim(parts[2]), "{g,h}");
  EXPECT_EQ(trim(parts[3]), "i");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("xyx", "y", ""), "xx");
  EXPECT_EQ(replace_all("none", "q", "z"), "none");
  EXPECT_EQ(replace_all("loop", "", "z"), "loop");  // empty needle is a no-op
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(is_identifier("rank"));
  EXPECT_TRUE(is_identifier("_x1"));
  EXPECT_FALSE(is_identifier("1x"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("a-b"));
  EXPECT_FALSE(is_identifier("a b"));
}

// --- bytes ---------------------------------------------------------------------

TEST(Bytes, RangesOverlap) {
  char block[16];
  EXPECT_TRUE(ranges_overlap(block, 8, block + 4, 8));
  EXPECT_FALSE(ranges_overlap(block, 4, block + 4, 4));  // adjacent
  EXPECT_TRUE(ranges_overlap(block, 16, block + 15, 1));
  EXPECT_FALSE(ranges_overlap(block, 1, block + 8, 1));
}

TEST(Bytes, AsBytesOfObject) {
  double value = 1.5;
  auto bytes = as_bytes_of(value);
  EXPECT_EQ(bytes.size(), sizeof(double));
  auto writable = as_writable_bytes_of(value);
  EXPECT_EQ(static_cast<void*>(writable.data()), static_cast<void*>(&value));
}

}  // namespace
