// Tests for cid::obs — histogram bucketing, the metrics registry, the
// golden Chrome trace-event export, the trace-file reader, and the live
// instrumentation path through a two-rank directive region.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "obs/obs.hpp"
#include "obs/trace_read.hpp"
#include "obs/trace_tool.hpp"
#include "rt/runtime.hpp"

namespace {

using namespace cid::core;
using cid::obs::Histogram;
using cid::obs::MetricsRegistry;
using cid::rt::RankCtx;
using cid::simnet::MachineModel;

/// Every obs test starts from a clean, disabled recorder and leaves it that
/// way: the registry is process-global, so leaked state would couple tests.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cid::obs::set_enabled(false);
    cid::obs::clear();
  }
  void TearDown() override {
    cid::obs::set_enabled(false);
    cid::obs::clear();
  }
};

// --- histogram bucketing -----------------------------------------------------

TEST_F(ObsTest, HistogramBucketZeroAbsorbsBaseAndBelow) {
  EXPECT_EQ(Histogram::bucket_of(0.0), 0);
  EXPECT_EQ(Histogram::bucket_of(-1.0), 0);
  EXPECT_EQ(Histogram::bucket_of(Histogram::kBase), 0);
  EXPECT_EQ(Histogram::bucket_of(Histogram::kBase / 2), 0);
}

TEST_F(ObsTest, HistogramBucketBoundariesAreInclusiveAbove) {
  // Bucket i covers (kBase * 2^(i-1), kBase * 2^i]: the upper bound lands in
  // its own bucket, anything just above spills into the next.
  for (int i = 1; i < 40; ++i) {
    const double upper = Histogram::bucket_upper_bound(i);
    EXPECT_EQ(Histogram::bucket_of(upper), i) << "upper bound of bucket " << i;
    EXPECT_EQ(Histogram::bucket_of(upper * 1.001), i + 1)
        << "just above bucket " << i;
  }
}

TEST_F(ObsTest, HistogramLastBucketAbsorbsEverything) {
  EXPECT_EQ(Histogram::bucket_of(1e300), Histogram::kBucketCount - 1);
}

TEST_F(ObsTest, HistogramTwoSecondsLandsInBucket31) {
  // 2 s / 1e-9 is just under 2^31, so frexp-based ceil(log2) gives 31.
  // Pinned because the golden JSON below hardcodes this bucket index.
  EXPECT_EQ(Histogram::bucket_of(2.0), 31);
}

TEST_F(ObsTest, HistogramStatistics) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  h.observe(1.0);
  h.observe(3.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.sum(), 4.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  std::uint64_t total = 0;
  for (const auto n : h.buckets()) total += n;
  EXPECT_EQ(total, 2u);
}

// --- recorder gating ---------------------------------------------------------

TEST_F(ObsTest, DisabledRecorderDropsEverything) {
  cid::obs::span({0, "sync", "flush", 0.0, 1.0, 0, 0});
  cid::obs::count("m", "s", 0);
  cid::obs::observe("m", "s", 0, 1.0);
  EXPECT_TRUE(cid::obs::spans().empty());
  EXPECT_TRUE(MetricsRegistry::global().counters().empty());
  EXPECT_TRUE(MetricsRegistry::global().histograms().empty());
}

TEST_F(ObsTest, CountersAccumulateAndSortByKey) {
  cid::obs::set_enabled(true);
  cid::obs::count("z.metric", "site", 0, 2);
  cid::obs::count("a.metric", "site", 1, 3);
  cid::obs::count("z.metric", "site", 0, 5);
  const auto counters = MetricsRegistry::global().counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].key.metric, "a.metric");
  EXPECT_EQ(counters[0].value, 3u);
  EXPECT_EQ(counters[1].key.metric, "z.metric");
  EXPECT_EQ(counters[1].value, 7u);
}

// --- golden Chrome JSON ------------------------------------------------------

TEST_F(ObsTest, GoldenChromeJsonForTwoRanks) {
  cid::obs::set_enabled(true);
  // Insert out of order: the exporter must sort into the deterministic
  // (rank, begin, ...) order regardless of recording interleaving.
  cid::obs::span({1, "sync", "flush", 1.0, 2.0, 0, 0});
  cid::obs::span({0, "comm_p2p", "a.cpp:1", 0.0, 2.0, 8, 1});
  cid::obs::count("m.count", "a.cpp:1", 0, 5);
  cid::obs::observe("m.lat", "flush", 1, 2.0);

  std::ostringstream out;
  cid::obs::write_chrome_json(out);

  const std::string golden =
      "{\n"
      "\"traceEvents\": [\n"
      R"({"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"cid virtual time"}})"
      ",\n"
      R"({"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"rank 0"}})"
      ",\n"
      R"({"name":"thread_name","ph":"M","pid":0,"tid":1,"args":{"name":"rank 1"}})"
      ",\n"
      R"({"name":"a.cpp:1","cat":"comm_p2p","ph":"X","pid":0,"tid":0,"ts":0,"dur":2000000,"args":{"bytes":8,"messages":1}})"
      ",\n"
      R"({"name":"flush","cat":"sync","ph":"X","pid":0,"tid":1,"ts":1000000,"dur":1000000,"args":{"bytes":0,"messages":0}})"
      "\n"
      "],\n"
      "\"displayTimeUnit\": \"ns\",\n"
      "\"cidMetrics\": {\n"
      "\"counters\": [\n"
      R"({"metric":"m.count","site":"a.cpp:1","rank":0,"value":5})"
      "\n"
      "],\n"
      "\"histograms\": [\n"
      R"({"metric":"m.lat","site":"flush","rank":1,"count":1,"sum":2,"min":2,"max":2,"buckets":[[31,1]]})"
      "\n"
      "]\n"
      "}\n"
      "}\n";
  EXPECT_EQ(out.str(), golden);
}

// --- JSON reader -------------------------------------------------------------

TEST_F(ObsTest, ParseJsonHandlesEscapesAndNesting) {
  const auto result = cid::obs::parse_json(
      R"({"a": [1, -2.5e3, "x\"\\\n"], "b": {"c": true, "d": null}})");
  ASSERT_TRUE(result.is_ok());
  const auto& json = result.value();
  const auto* a = json.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[1].number, -2500.0);
  EXPECT_EQ(a->array[2].string, "x\"\\\n");
  const auto* b = json.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->find("c")->boolean);
  EXPECT_EQ(b->find("d")->kind, cid::obs::Json::Kind::Null);
}

TEST_F(ObsTest, ParseJsonRejectsGarbage) {
  EXPECT_FALSE(cid::obs::parse_json("{").is_ok());
  EXPECT_FALSE(cid::obs::parse_json("[1,]").is_ok());
  EXPECT_FALSE(cid::obs::parse_json("[1] trailing").is_ok());
}

TEST_F(ObsTest, ExportRoundTripsThroughReader) {
  cid::obs::set_enabled(true);
  cid::obs::span({0, "comm_p2p", "a.cpp:1", 0.0, 2.0, 64, 2});
  cid::obs::span({1, "sync", "flush", 1.0, 2.0, 0, 0});
  cid::obs::count("m.count", "a.cpp:1", 0, 5);
  cid::obs::observe("m.lat", "flush", 1, 2.0);

  std::ostringstream out;
  cid::obs::write_chrome_json(out);
  const auto parsed = cid::obs::parse_trace(out.str());
  ASSERT_TRUE(parsed.is_ok());
  const auto& trace = parsed.value();

  ASSERT_EQ(trace.spans.size(), 2u);  // metadata events skipped
  EXPECT_EQ(trace.spans[0].cat, "comm_p2p");
  EXPECT_EQ(trace.spans[0].rank, 0);
  EXPECT_EQ(trace.spans[0].dur_us, 2000000.0);
  EXPECT_EQ(trace.spans[0].bytes, 64u);
  EXPECT_EQ(trace.spans[0].messages, 2u);
  ASSERT_EQ(trace.counters.size(), 1u);
  EXPECT_EQ(trace.counters[0].metric, "m.count");
  EXPECT_EQ(trace.counters[0].value, 5u);
  ASSERT_EQ(trace.histograms.size(), 1u);
  EXPECT_EQ(trace.histograms[0].count, 1u);
  EXPECT_DOUBLE_EQ(trace.histograms[0].sum, 2.0);
}

TEST_F(ObsTest, ReaderAcceptsCollectorArrayForm) {
  // core::TraceCollector writes a bare array; the reader must take both.
  const char* text =
      R"([{"name":"comm_p2p a.cpp:1","cat":"comm_p2p","ph":"X","pid":0,)"
      R"("tid":2,"ts":1.5,"dur":2.5,"args":{"bytes":16,"messages":1}}])";
  const auto parsed = cid::obs::parse_trace(text);
  ASSERT_TRUE(parsed.is_ok());
  ASSERT_EQ(parsed.value().spans.size(), 1u);
  EXPECT_EQ(parsed.value().spans[0].rank, 2);
  EXPECT_EQ(parsed.value().spans[0].bytes, 16u);
  EXPECT_TRUE(parsed.value().counters.empty());
}

// --- summarize / diff --------------------------------------------------------

TEST_F(ObsTest, SummarizeReportsPerPhaseAndPerSite) {
  cid::obs::set_enabled(true);
  cid::obs::span({0, "comm_p2p", "a.cpp:1", 0.0, 2e-6, 128, 1});
  cid::obs::span({1, "comm_p2p", "a.cpp:1", 0.0, 2e-6, 128, 1});
  cid::obs::span({0, "sync", "flush", 2e-6, 3e-6, 0, 0});
  std::ostringstream json;
  cid::obs::write_chrome_json(json);
  const auto trace = cid::obs::parse_trace(json.str());
  ASSERT_TRUE(trace.is_ok());

  std::ostringstream report;
  cid::obs::summarize_trace(trace.value(), report);
  const std::string text = report.str();
  EXPECT_NE(text.find("3 spans on 2 rank(s)"), std::string::npos) << text;
  EXPECT_NE(text.find("comm_p2p"), std::string::npos);
  EXPECT_NE(text.find("a.cpp:1"), std::string::npos);
  EXPECT_NE(text.find("256"), std::string::npos);  // total bytes
}

TEST_F(ObsTest, DiffDetectsChangedAggregates) {
  cid::obs::TraceFile lhs;
  lhs.spans.push_back({0, "comm_p2p", "a.cpp:1", 0.0, 2.0, 128, 1});
  cid::obs::TraceFile rhs = lhs;

  std::ostringstream sink;
  EXPECT_TRUE(cid::obs::diff_traces(lhs, rhs, sink));

  rhs.spans[0].bytes = 64;
  std::ostringstream report;
  EXPECT_FALSE(cid::obs::diff_traces(lhs, rhs, report));
  EXPECT_NE(report.str().find("a.cpp:1"), std::string::npos) << report.str();
}

// --- live two-rank region ----------------------------------------------------

/// One exchange iteration with a region, two guarded p2p directives (one
/// overlapped), mirroring the paper's halo pattern at miniature scale.
void run_two_rank_region() {
  cid::rt::run(2, MachineModel::cray_xk7_gemini(), [](RankCtx&) {
    double a[4] = {1, 2, 3, 4}, b[4] = {};
    comm_parameters(Clauses().count(4), [&](Region& region) {
      region.p2p(Clauses()
                     .sender(0)
                     .receiver(1)
                     .sendwhen("rank==0")
                     .receivewhen("rank==1")
                     .sbuf(buf(a))
                     .rbuf(buf(b)));
      region.p2p(Clauses()
                     .sender(1)
                     .receiver(0)
                     .sendwhen("rank==1")
                     .receivewhen("rank==0")
                     .sbuf(buf(a))
                     .rbuf(buf(b)),
                 [] { /* overlapped compute */ });
    });
  });
}

TEST_F(ObsTest, LiveRegionRecordsAllPhaseKindsOnAllRanks) {
  cid::obs::set_enabled(true);
  run_two_rank_region();
  const auto spans = cid::obs::spans();
  ASSERT_FALSE(spans.empty());

  std::vector<std::string> cats;
  std::vector<int> ranks;
  for (const auto& s : spans) {
    if (std::find(cats.begin(), cats.end(), s.cat) == cats.end()) {
      cats.push_back(s.cat);
    }
    if (std::find(ranks.begin(), ranks.end(), s.rank) == ranks.end()) {
      ranks.push_back(s.rank);
    }
  }
  EXPECT_GE(cats.size(), 3u) << "expected region/p2p/sync/overlap kinds";
  EXPECT_EQ(ranks.size(), 2u);
  for (const char* kind : {"comm_parameters", "comm_p2p", "sync", "overlap"}) {
    EXPECT_NE(std::find(cats.begin(), cats.end(), kind), cats.end())
        << "missing phase kind " << kind;
  }

  // The forwarding layer derives per-site metrics from the same events.
  bool saw_p2p_bytes = false;
  for (const auto& row : MetricsRegistry::global().counters()) {
    if (row.key.metric == "cid.p2p.bytes_sent" && row.value > 0) {
      saw_p2p_bytes = true;
    }
  }
  EXPECT_TRUE(saw_p2p_bytes);
}

TEST_F(ObsTest, ExportIsByteIdenticalAcrossRuns) {
  // Deterministic virtual time + total-order serialization: two identical
  // runs must export byte-identical JSON.
  cid::obs::set_enabled(true);
  run_two_rank_region();
  std::ostringstream first;
  cid::obs::write_chrome_json(first);

  cid::obs::clear();
  run_two_rank_region();
  std::ostringstream second;
  cid::obs::write_chrome_json(second);

  EXPECT_EQ(first.str(), second.str());
  EXPECT_GT(first.str().size(), 100u);
}

TEST_F(ObsTest, EnablingObsDoesNotPerturbVirtualTime) {
  auto makespan_of = [] {
    double grid[8] = {};
    const auto result =
        cid::rt::run(2, MachineModel::cray_xk7_gemini(), [&](RankCtx&) {
          double b[8] = {};
          comm_p2p(Clauses()
                       .sender(0)
                       .receiver(1)
                       .sendwhen("rank==0")
                       .receivewhen("rank==1")
                       .sbuf(buf(grid))
                       .rbuf(buf(b)));
        });
    return result.makespan();
  };
  cid::obs::set_enabled(false);
  const double off = makespan_of();
  cid::obs::set_enabled(true);
  const double on = makespan_of();
  EXPECT_EQ(off, on);  // bit-exact, not approximately
}

}  // namespace
