// Tests for the communication-statistics layer: every directive execution
// and its lowering events are countable, per rank, per target.
#include <gtest/gtest.h>

#include <vector>

#include "core/core.hpp"
#include "rt/runtime.hpp"
#include "shmem/shmem.hpp"

namespace {

using namespace cid::core;
using cid::rt::RankCtx;
using cid::simnet::MachineModel;

void spmd(int nranks, const cid::rt::RankFn& fn) {
  cid::rt::run(nranks, MachineModel::zero(), fn);
}

TEST(Stats, FreshWorldStartsAtZero) {
  spmd(2, [](RankCtx&) {
    const CommStats& stats = comm_stats();
    EXPECT_EQ(stats.p2p_directives, 0u);
    EXPECT_EQ(stats.total_messages(), 0u);
    EXPECT_EQ(stats.waitalls, 0u);
  });
}

TEST(Stats, CountsP2PMessagesAndBytes) {
  spmd(2, [](RankCtx& ctx) {
    double out[8] = {};
    double in[8] = {};
    comm_p2p(Clauses()
                 .sender(0)
                 .receiver(1)
                 .sendwhen("rank==0")
                 .receivewhen("rank==1")
                 .sbuf(buf(out))
                 .rbuf(buf(in)));
    const CommStats& stats = comm_stats();
    EXPECT_EQ(stats.p2p_directives, 1u);
    if (ctx.rank() == 0) {
      EXPECT_EQ(stats.mpi2_messages, 1u);
      EXPECT_EQ(stats.mpi2_bytes, 8 * sizeof(double));
    } else {
      EXPECT_EQ(stats.mpi2_messages, 0u);  // receiver injects nothing
    }
    // Standalone directive: one consolidated waitall on every participant.
    EXPECT_EQ(stats.waitalls, 1u);
  });
}

TEST(Stats, RegionConsolidationVisibleInCounters) {
  spmd(2, [](RankCtx& ctx) {
    constexpr int kMsgs = 10;
    std::vector<double> data(3 * kMsgs);
    comm_parameters(
        Clauses().sender(0).receiver(1).sendwhen("rank==0")
            .receivewhen("rank==1").count(3).max_comm_iter(kMsgs),
        [&](Region& region) {
          for (int p = 0; p < kMsgs; ++p) {
            region.p2p(
                Clauses().sbuf(buf(&data[3 * p])).rbuf(buf(&data[3 * p])));
          }
        });
    const CommStats& stats = comm_stats();
    EXPECT_EQ(stats.regions, 1u);
    EXPECT_EQ(stats.p2p_directives, kMsgs);
    // The headline property: many messages, ONE consolidated sync.
    EXPECT_EQ(stats.waitalls, 1u);
    if (ctx.rank() == 0) {
      EXPECT_EQ(stats.mpi2_messages, static_cast<std::uint64_t>(kMsgs));
      EXPECT_EQ(stats.requests_retired, static_cast<std::uint64_t>(kMsgs));
    }
  });
}

TEST(Stats, ShmemTargetCountsPuts) {
  spmd(2, [](RankCtx& ctx) {
    double* rbuf_sym = cid::shmem::malloc_of<double>(4);
    double sbuf_local[4] = {};
    ctx.barrier();
    comm_p2p(Clauses()
                 .sender(0)
                 .receiver(1)
                 .sendwhen("rank==0")
                 .receivewhen("rank==1")
                 .count(4)
                 .target(Target::Shmem)
                 .sbuf(buf(sbuf_local))
                 .rbuf(buf_n(rbuf_sym, 4)));
    const CommStats& stats = comm_stats();
    if (ctx.rank() == 0) {
      EXPECT_EQ(stats.shmem_puts, 1u);
      EXPECT_EQ(stats.shmem_bytes, 4 * sizeof(double));
      EXPECT_EQ(stats.shmem_quiets, 1u);
      EXPECT_EQ(stats.mpi2_messages, 0u);
    }
  });
}

TEST(Stats, ConflictFlushCounted) {
  spmd(2, [](RankCtx& ctx) {
    double stage[4] = {};
    double final_data[4] = {};
    double source[4] = {1, 2, 3, 4};
    comm_parameters(Clauses().count(4), [&](Region& region) {
      region.p2p(Clauses()
                     .sender(0)
                     .receiver(1)
                     .sendwhen("rank==0")
                     .receivewhen("rank==1")
                     .sbuf(buf(source))
                     .rbuf(buf(stage)));
      region.p2p(Clauses()
                     .sender(1)
                     .receiver(0)
                     .sendwhen("rank==1")
                     .receivewhen("rank==0")
                     .sbuf(buf(stage))
                     .rbuf(buf(final_data)));
    });
    // The RAW dependence on `stage` forces an intermediate sync on the
    // ranks that touch it on both sides.
    if (ctx.rank() == 1) {
      EXPECT_GE(comm_stats().conflict_flushes, 1u);
    }
  });
}

TEST(Stats, DeferredSyncCounted) {
  spmd(2, [](RankCtx&) {
    double a[2] = {}, b[2] = {};
    comm_parameters(
        Clauses().sender(0).receiver(1).sendwhen("rank==0")
            .receivewhen("rank==1")
            .place_sync(SyncPlacement::BeginNextParamRegion),
        [&](Region& region) {
          region.p2p(Clauses().sbuf(buf(a)).rbuf(buf(b)));
        });
    EXPECT_EQ(comm_stats().deferred_syncs, 1u);
    comm_flush();
  });
}

TEST(Stats, CollectiveDirectiveCounted) {
  spmd(4, [](RankCtx&) {
    double s[4] = {}, r[4] = {};
    comm_collective(Clauses()
                        .pattern(Pattern::AllToAll)
                        .count(1)
                        .sbuf(buf(s))
                        .rbuf(buf(r)));
    EXPECT_EQ(comm_stats().collective_directives, 1u);
  });
}

TEST(Stats, ResetClearsCounters) {
  spmd(2, [](RankCtx&) {
    double a[2] = {}, b[2] = {};
    comm_p2p(Clauses()
                 .sender(0)
                 .receiver(1)
                 .sendwhen("rank==0")
                 .receivewhen("rank==1")
                 .sbuf(buf(a))
                 .rbuf(buf(b)));
    EXPECT_GT(comm_stats().p2p_directives, 0u);
    reset_comm_stats();
    EXPECT_EQ(comm_stats().p2p_directives, 0u);
    EXPECT_EQ(comm_stats().total_bytes(), 0u);
  });
}

TEST(Stats, ToStringMentionsAllSections) {
  CommStats stats;
  stats.p2p_directives = 3;
  stats.mpi2_messages = 5;
  stats.waitalls = 2;
  stats.datatypes_created = 1;
  const std::string text = stats.to_string();
  EXPECT_NE(text.find("directives:"), std::string::npos);
  EXPECT_NE(text.find("traffic:"), std::string::npos);
  EXPECT_NE(text.find("sync:"), std::string::npos);
  EXPECT_NE(text.find("datatypes:"), std::string::npos);
  EXPECT_NE(text.find("reliability:"), std::string::npos);
}

TEST(Stats, ToStringReportsReliabilityCounters) {
  CommStats stats;
  stats.reliable_transfers = 4;
  stats.retransmits = 3;
  stats.timeouts = 2;
  stats.duplicates_suppressed = 1;
  stats.undelivered_pairs = 1;
  const std::string text = stats.to_string();
  EXPECT_NE(text.find("3 retransmits"), std::string::npos);
  EXPECT_NE(text.find("2 timeouts"), std::string::npos);
  EXPECT_NE(text.find("1 duplicates suppressed"), std::string::npos);
  EXPECT_NE(text.find("1 undelivered"), std::string::npos);
}

}  // namespace

// Composite fixture for the datatype cache counter test (reflection must be
// at namespace scope).
struct StatsProbeStruct {
  int a;
  double b;
};
CID_REFLECT_STRUCT(StatsProbeStruct, a, b)

namespace {

TEST(Stats, DatatypeCreationAndCacheHits) {
  spmd(2, [](RankCtx& ctx) {
    StatsProbeStruct data{1, 2.0};
    for (int i = 0; i < 3; ++i) {
      comm_p2p(Clauses()
                   .sender(0)
                   .receiver(1)
                   .sendwhen("rank==0")
                   .receivewhen("rank==1")
                   .count(1)
                   .sbuf(buf(data))
                   .rbuf(buf(data)));
    }
    const CommStats& stats = comm_stats();
    if (ctx.rank() == 0 || ctx.rank() == 1) {
      EXPECT_EQ(stats.datatypes_created, 1u);  // created once...
      EXPECT_EQ(stats.datatype_cache_hits, 2u);  // ...reused per scope
    }
  });
}

}  // namespace
