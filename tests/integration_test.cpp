// Cross-module integration tests, including the full translator pipeline:
// pragma source -> cidt translation -> host compiler -> executable linked
// against miniMPI/miniSHMEM -> run -> verify output. This is the end-to-end
// path the paper's Open64 implementation provides.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "translate/translator.hpp"

// Supplied by CMake.
#ifndef CID_SOURCE_DIR
#define CID_SOURCE_DIR "."
#endif
#ifndef CID_BINARY_DIR
#define CID_BINARY_DIR "."
#endif
#ifndef CID_CXX_COMPILER
#define CID_CXX_COMPILER "g++"
#endif
// Extra flags matching the build configuration (sanitizers, notably).
#ifndef CID_EXTRA_CXX_FLAGS
#define CID_EXTRA_CXX_FLAGS ""
#endif

namespace {

std::string temp_dir() {
  std::string dir = std::string(CID_BINARY_DIR) + "/integration_tmp";
  std::string command = "mkdir -p '" + dir + "'";
  EXPECT_EQ(std::system(command.c_str()), 0);
  return dir;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << path;
  out << content;
}

/// Compile `source_path` against the cid libraries; returns the exit status
/// of the compiler.
int compile(const std::string& source_path, const std::string& binary_path,
            std::string* log) {
  const std::string libs = std::string(CID_BINARY_DIR) +
                           "/src/wllsms/libcid_wllsms.a " + CID_BINARY_DIR +
                           "/src/translate/libcid_translate.a " +
                           CID_BINARY_DIR + "/src/core/libcid_core.a " +
                           CID_BINARY_DIR + "/src/mpi/libcid_mpi.a " +
                           CID_BINARY_DIR + "/src/shmem/libcid_shmem.a " +
                           CID_BINARY_DIR + "/src/rt/libcid_rt.a " +
                           CID_BINARY_DIR + "/src/net/libcid_net.a " +
                           // net <-> rt is a link cycle: repeat cid_rt after
                           // cid_net so the transports' rt symbols resolve.
                           CID_BINARY_DIR + "/src/rt/libcid_rt.a " +
                           CID_BINARY_DIR + "/src/tune/libcid_tune.a " +
                           CID_BINARY_DIR + "/src/obs/libcid_obs.a " +
                           CID_BINARY_DIR + "/src/simnet/libcid_simnet.a " +
                           CID_BINARY_DIR + "/src/common/libcid_common.a";
  const std::string command = std::string(CID_CXX_COMPILER) + " -std=c++20 " +
                              CID_EXTRA_CXX_FLAGS + " -I" + CID_SOURCE_DIR +
                              "/src -o '" + binary_path + "' '" + source_path +
                              "' " + libs + " -lpthread 2>'" + binary_path +
                              ".log'";
  const int status = std::system(command.c_str());
  if (log != nullptr) {
    std::ifstream in(binary_path + ".log");
    std::stringstream buffer;
    buffer << in.rdbuf();
    *log = buffer.str();
  }
  return status;
}

/// Run a binary, capture stdout.
std::string run_capture(const std::string& binary_path, int* status) {
  const std::string out_path = binary_path + ".out";
  const std::string command =
      "'" + binary_path + "' >'" + out_path + "' 2>&1";
  *status = std::system(command.c_str());
  std::ifstream in(out_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A complete pragma-annotated SPMD program: ring exchange, checked, then a
/// region with guards. The translator must turn the pragmas into library
/// calls that compile and produce correct data.
constexpr const char* kRingProgram = R"prog(
#include <cstdio>
#include <cstdlib>
#include <vector>
#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"
#include "shmem/shmem.hpp"
#include "translate/runtime.hpp"

int main() {
  auto result = cid::rt::run(6, [](cid::rt::RankCtx& ctx) {
    const int rank = ctx.rank();
    const int nprocs = ctx.nranks();
    int prev = (rank - 1 + nprocs) % nprocs;
    int next = (rank + 1) % nprocs;
    double buf1[4];
    double buf2[4] = {0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) buf1[i] = rank * 10.0 + i;

#pragma comm_p2p sender(prev) receiver(next) sbuf(buf1) rbuf(buf2)
    { }

    for (int i = 0; i < 4; ++i) {
      if (buf2[i] != prev * 10.0 + i) {
        std::fprintf(stderr, "rank %d: BAD DATA\n", rank);
        std::exit(1);
      }
    }
  });
  std::printf("RING-OK %.3f\n", result.makespan() * 1e6);
  return 0;
}
)prog";

TEST(TranslatorPipeline, RingProgramTranslatesCompilesRuns) {
  const std::string dir = temp_dir();
  auto translated = cid::translate::translate_source(kRingProgram);
  ASSERT_TRUE(translated.is_ok()) << translated.status().to_string();
  EXPECT_EQ(translated.value().summary.p2p_directives, 1);

  const std::string source_path = dir + "/ring_translated.cpp";
  write_file(source_path, translated.value().source);

  std::string log;
  ASSERT_EQ(compile(source_path, dir + "/ring_translated", &log), 0)
      << "compiler output:\n"
      << log;

  int status = 0;
  const std::string output = run_capture(dir + "/ring_translated", &status);
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("RING-OK"), std::string::npos) << output;
}

/// The same program retargeted to SHMEM via the translator option; buffers
/// must be symmetric, so the program allocates them with shmem::malloc_of.
constexpr const char* kShmemProgram = R"prog(
#include <cstdio>
#include <cstdlib>
#include "rt/runtime.hpp"
#include "mpi/mpi.hpp"
#include "shmem/shmem.hpp"
#include "translate/runtime.hpp"

int main() {
  auto result = cid::rt::run(4, [](cid::rt::RankCtx& ctx) {
    const int rank = ctx.rank();
    const int nprocs = ctx.nranks();
    int prev = (rank - 1 + nprocs) % nprocs;
    int next = (rank + 1) % nprocs;
    double* buf2 = cid::shmem::malloc_of<double>(4);
    double buf1[4];
    for (int i = 0; i < 4; ++i) { buf1[i] = rank + i * 0.25; buf2[i] = -1; }
    ctx.barrier();

#pragma comm_p2p sender(prev) receiver(next) sbuf(buf1) rbuf(buf2) count(4) target(TARGET_COMM_SHMEM)
    { }

    for (int i = 0; i < 4; ++i) {
      if (buf2[i] != prev + i * 0.25) std::exit(1);
    }
  });
  std::printf("SHMEM-OK\n");
  (void)result;
  return 0;
}
)prog";

TEST(TranslatorPipeline, ShmemTargetCompilesRuns) {
  const std::string dir = temp_dir();
  auto translated = cid::translate::translate_source(kShmemProgram);
  ASSERT_TRUE(translated.is_ok()) << translated.status().to_string();

  const std::string source_path = dir + "/shmem_translated.cpp";
  write_file(source_path, translated.value().source);

  std::string log;
  ASSERT_EQ(compile(source_path, dir + "/shmem_translated", &log), 0)
      << "compiler output:\n"
      << log;

  int status = 0;
  const std::string output = run_capture(dir + "/shmem_translated", &status);
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("SHMEM-OK"), std::string::npos) << output;
}

/// Region with inheritance, loop, and count inference through the translated
/// runtime helpers.
constexpr const char* kRegionProgram = R"prog(
#include <cstdio>
#include <cstdlib>
#include <vector>
#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"
#include "shmem/shmem.hpp"
#include "translate/runtime.hpp"

int main() {
  cid::rt::run(4, [](cid::rt::RankCtx& ctx) {
    const int rank = ctx.rank();
    const int nprocs = ctx.nranks();
    (void)nprocs;
    const int n = 5;
    double buf1[5];
    double buf2[5] = {0, 0, 0, 0, 0};
    for (int p = 0; p < n; ++p) buf1[p] = rank * 2.0 + p;

#pragma comm_parameters sender(rank-1) receiver(rank+1) sendwhen(rank%2==0) receivewhen(rank%2==1) count(1) max_comm_iter(n) place_sync(END_PARAM_REGION)
    {
      for (int p = 0; p < n; ++p)
#pragma comm_p2p sbuf(&buf1[p]) rbuf(&buf2[p])
      { }
    }

    if (rank % 2 == 1) {
      for (int p = 0; p < n; ++p) {
        if (buf2[p] != (rank - 1) * 2.0 + p) std::exit(1);
      }
    }
  });
  std::printf("REGION-OK\n");
  return 0;
}
)prog";

TEST(TranslatorPipeline, RegionProgramCompilesRuns) {
  const std::string dir = temp_dir();
  auto translated = cid::translate::translate_source(kRegionProgram);
  ASSERT_TRUE(translated.is_ok()) << translated.status().to_string();
  EXPECT_EQ(translated.value().summary.parameter_regions, 1);
  EXPECT_EQ(translated.value().summary.consolidated_syncs, 1);

  const std::string source_path = dir + "/region_translated.cpp";
  write_file(source_path, translated.value().source);

  std::string log;
  ASSERT_EQ(compile(source_path, dir + "/region_translated", &log), 0)
      << "compiler output:\n"
      << log;

  int status = 0;
  const std::string output = run_capture(dir + "/region_translated", &status);
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("REGION-OK"), std::string::npos) << output;
}

TEST(TranslatorPipeline, CidtCliRoundTrip) {
  const std::string dir = temp_dir();
  write_file(dir + "/cli_input.cpp", kRingProgram);
  const std::string cidt = std::string(CID_BINARY_DIR) + "/tools/cidt";
  const std::string command = "'" + cidt + "' -o '" + dir +
                              "/cli_output.cpp' --summary '" + dir +
                              "/cli_input.cpp' 2>'" + dir + "/cli.log'";
  ASSERT_EQ(std::system(command.c_str()), 0);
  std::ifstream in(dir + "/cli_output.cpp");
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("cid::mpi::isend"), std::string::npos);

  std::ifstream log(dir + "/cli.log");
  std::stringstream log_buffer;
  log_buffer << log.rdbuf();
  EXPECT_NE(log_buffer.str().find("1 comm_p2p directive(s)"),
            std::string::npos);
}

TEST(TranslatorPipeline, CidtCliRejectsBadInput) {
  const std::string dir = temp_dir();
  write_file(dir + "/bad_input.cpp",
             "#pragma comm_p2p bogus(1)\n{ }\n");
  const std::string cidt = std::string(CID_BINARY_DIR) + "/tools/cidt";
  const std::string command =
      "'" + cidt + "' '" + dir + "/bad_input.cpp' >/dev/null 2>&1";
  EXPECT_NE(std::system(command.c_str()), 0);
}

}  // namespace

namespace {

TEST(TranslatorPipeline, CidtCheckMode) {
  const std::string dir = temp_dir();
  write_file(dir + "/check_ok.cpp", kRingProgram);
  write_file(dir + "/check_bad.cpp",
             "#pragma comm_p2p sbuf(a) rbuf(b)\n{ }\n");
  const std::string cidt = std::string(CID_BINARY_DIR) + "/tools/cidt";
  EXPECT_EQ(std::system(("'" + cidt + "' --check '" + dir +
                         "/check_ok.cpp' 2>/dev/null")
                            .c_str()),
            0);
  EXPECT_NE(std::system(("'" + cidt + "' --check '" + dir +
                         "/check_bad.cpp' >/dev/null 2>&1")
                            .c_str()),
            0);
  // Check mode writes no output file.
  EXPECT_NE(std::system(("test -f '" + dir + "/check_ok.out'").c_str()), 0);
}

// The exit-code contract of the CLI: 0 clean, 1 findings, 2 usage error,
// 3 I/O error — what the CI lint job keys on.
TEST(TranslatorPipeline, CidtCheckSubcommandExitCodes) {
  const std::string dir = temp_dir();
  write_file(dir + "/lint_clean.cpp", kRingProgram);
  write_file(dir + "/lint_bad.cpp",
             "#pragma comm_p2p sender(rank-1) receiver(rank+1) sbuf(a) "
             "rbuf(b)\n{ }\n");
  const std::string cidt = std::string(CID_BINARY_DIR) + "/tools/cidt";
  auto run = [](const std::string& command) {
    const int status = std::system((command + " >/dev/null 2>&1").c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  };
  EXPECT_EQ(run("'" + cidt + "' check '" + dir + "/lint_clean.cpp'"), 0);
  EXPECT_EQ(run("'" + cidt + "' check '" + dir + "/lint_bad.cpp'"), 1);
  EXPECT_EQ(run("'" + cidt + "' check"), 2);
  EXPECT_EQ(run("'" + cidt + "' check --bogus-flag x.cpp"), 2);
  EXPECT_EQ(run("'" + cidt + "' check '" + dir + "/does_not_exist.cpp'"), 3);
  // --json emits the machine-readable document on stdout.
  EXPECT_EQ(run("'" + cidt + "' check --json '" + dir + "/lint_bad.cpp' | "
                "grep -q '\"cidlint\":1'"),
            0);
}

}  // namespace
