// Tests for the WL-LSMS mini-app: atom data fidelity, the original
// (Listing 4/6) communication paths, the directive (Listing 5/7) paths on
// every target, the Figure-1 topology, and the experiment drivers whose
// ratios reproduce the paper's Figure 4.
#include <gtest/gtest.h>

#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"
#include "shmem/shmem.hpp"
#include "wllsms/comm_directive.hpp"
#include "wllsms/comm_original.hpp"
#include "wllsms/driver.hpp"

namespace {

using namespace cid::wllsms;
using cid::rt::RankCtx;
using cid::simnet::MachineModel;

void spmd(int nranks, const cid::rt::RankFn& fn) {
  cid::rt::run(nranks, MachineModel::zero(), fn);
}

// --- atom data ---------------------------------------------------------------

TEST(Atom, GenerationIsDeterministic) {
  const AtomData a = make_atom(3);
  const AtomData b = make_atom(3);
  EXPECT_TRUE(a == b);
  const AtomData c = make_atom(4);
  EXPECT_FALSE(a == c);
}

TEST(Atom, FieldInventoryMatchesListing4) {
  const AtomData atom = make_atom(0);
  EXPECT_EQ(atom.vr.n_col(), 2u);
  EXPECT_EQ(atom.rhotot.n_row(), atom.vr.n_row());
  EXPECT_EQ(atom.ec.n_col(), 2u);
  EXPECT_EQ(atom.nc.n_row(), atom.ec.n_row());
  EXPECT_EQ(atom.scalars.ztotss, 26.0);  // iron
  EXPECT_EQ(atom.scalars.numc, static_cast<int>(atom_core_rows(0)));
  EXPECT_GT(atom.payload_bytes(), 8000u);  // kilobytes-scale, per the paper
}

TEST(Atom, ResizePreservesData) {
  AtomData atom = make_atom(1);
  const double v00 = atom.vr(0, 0);
  const std::size_t old_rows = atom.vr.n_row();
  atom.resize_potential(old_rows + 50);
  EXPECT_EQ(atom.vr.n_row(), old_rows + 50);
  EXPECT_DOUBLE_EQ(atom.vr(0, 0), v00);
}

TEST(Atom, ScalarReflectionValid) {
  const auto& layout = cid::core::TypeLayoutOf<AtomScalarData>::get();
  EXPECT_TRUE(layout.validate().is_ok());
  EXPECT_EQ(layout.fields.size(), 14u);  // the fourteen packed scalars
  EXPECT_EQ(layout.extent, sizeof(AtomScalarData));
}

// --- original path -----------------------------------------------------------

TEST(OriginalComm, TransferAtomRoundTrips) {
  spmd(2, [](RankCtx& ctx) {
    auto world = cid::mpi::Comm::world();
    if (ctx.rank() == 0) {
      AtomData atom = make_atom(7);
      transfer_atom_original(world, 0, 1, atom);
    } else {
      AtomData atom;
      atom.resize_potential(atom_potential_rows(7));
      atom.resize_core(atom_core_rows(7));
      transfer_atom_original(world, 0, 1, atom);
      EXPECT_TRUE(atom == make_atom(7));
    }
  });
}

TEST(OriginalComm, TransferResizesSmallReceiver) {
  spmd(2, [](RankCtx& ctx) {
    auto world = cid::mpi::Comm::world();
    if (ctx.rank() == 0) {
      AtomData atom = make_atom(2);
      transfer_atom_original(world, 0, 1, atom);
    } else {
      AtomData atom;
      atom.resize_potential(8);  // far too small: Listing 4's resize path
      atom.resize_core(2);
      transfer_atom_original(world, 0, 1, atom);
      const AtomData expected = make_atom(2);
      // resizePotential(t+50) leaves extra rows; compare the payload window.
      EXPECT_GE(atom.vr.n_row(), expected.vr.n_row());
      EXPECT_DOUBLE_EQ(atom.vr(0, 0), expected.vr(0, 0));
      EXPECT_EQ(atom.scalars, expected.scalars);
      EXPECT_EQ(atom.nc(0, 0), expected.nc(0, 0));
    }
  });
}

TEST(OriginalComm, UninvolvedRankReturnsImmediately) {
  spmd(3, [](RankCtx& ctx) {
    auto world = cid::mpi::Comm::world();
    AtomData atom = make_atom(0);
    if (ctx.rank() == 2) {
      transfer_atom_original(world, 0, 1, atom);  // not from, not to
      SUCCEED();
    } else {
      transfer_atom_original(world, 0, 1, atom);
    }
  });
}

TEST(OriginalComm, SpinOwnerPartitionsTypes) {
  // Owners cover exactly ranks 1..size-1 and every type has one owner.
  for (int size : {2, 3, 5, 9}) {
    int total = 0;
    for (int r = 0; r < size; ++r) {
      total += spin_local_count(r, 16, size);
    }
    EXPECT_EQ(total, 16) << "size " << size;
    EXPECT_EQ(spin_local_count(0, 16, size), 0);
    for (int t = 0; t < 16; ++t) {
      const int owner = spin_owner(t, size);
      EXPECT_GE(owner, 1);
      EXPECT_LT(owner, size);
    }
  }
}

TEST(OriginalComm, SetEvecDeliversVectors) {
  for (const EvecSync sync : {EvecSync::WaitLoop, EvecSync::Waitall}) {
    spmd(4, [sync](RankCtx& ctx) {
      auto world = cid::mpi::Comm::world();
      constexpr int kTypes = 10;
      std::vector<double> ev;
      if (ctx.rank() == 0) {
        ev.resize(3 * kTypes);
        for (int i = 0; i < 3 * kTypes; ++i) ev[i] = i + 0.5;
      }
      std::vector<double> local(3 * kTypes, -1.0);
      set_evec_original(world, ev, kTypes, local, sync);
      if (ctx.rank() != 0) {
        // The i-th owned type of this rank is type (rank-1) + i*(size-1).
        int slot = 0;
        for (int t = 0; t < kTypes; ++t) {
          if (spin_owner(t, 4) != ctx.rank()) continue;
          EXPECT_DOUBLE_EQ(local[3 * slot], 3 * t + 0.5);
          EXPECT_DOUBLE_EQ(local[3 * slot + 2], 3 * t + 2.5);
          ++slot;
        }
      }
    });
  }
}

// --- directive path ----------------------------------------------------------

TEST(DirectiveComm, StageRoundTrip) {
  spmd(1, [](RankCtx&) {
    const AtomData atom = make_atom(5);
    AtomStage stage =
        make_symmetric_stage(2 * atom_potential_rows(5), 2 * atom_core_rows(5));
    load_stage(atom, stage);
    AtomData out;
    unload_stage(stage, out);
    EXPECT_EQ(out.scalars, atom.scalars);
    EXPECT_DOUBLE_EQ(out.vr(3, 1), atom.vr(3, 1));
    EXPECT_EQ(out.kc(1, 0), atom.kc(1, 0));
  });
}

class DirectiveTransferTest
    : public ::testing::TestWithParam<cid::core::Target> {};

TEST_P(DirectiveTransferTest, TransferAtomMatchesOriginal) {
  const cid::core::Target target = GetParam();
  spmd(3, [target](RankCtx& ctx) {
    const int atom_id = 9;
    const std::size_t pot = 2 * atom_potential_rows(atom_id);
    const std::size_t core = 2 * atom_core_rows(atom_id);
    AtomStage stage = make_symmetric_stage(pot, core);
    if (ctx.rank() == 0) {
      load_stage(make_atom(atom_id), stage);
    } else {
      stage.potential_count = pot;
      stage.core_count = core;
    }
    transfer_atom_directive(0, 2, stage, target);
    if (ctx.rank() == 2) {
      AtomData received;
      unload_stage(stage, received);
      EXPECT_TRUE(received == make_atom(atom_id))
          << "target " << static_cast<int>(target);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllTargets, DirectiveTransferTest,
                         ::testing::Values(cid::core::Target::Mpi2Side,
                                           cid::core::Target::Mpi1Side,
                                           cid::core::Target::Shmem));

class DirectiveEvecTest : public ::testing::TestWithParam<cid::core::Target> {
};

TEST_P(DirectiveEvecTest, SetEvecMatchesOriginal) {
  const cid::core::Target target = GetParam();
  spmd(5, [target](RankCtx& ctx) {
    constexpr int kTypes = 12;
    double* local = cid::shmem::malloc_of<double>(3 * kTypes);
    std::fill(local, local + 3 * kTypes, -1.0);
    std::vector<int> members{0, 1, 2, 3, 4};
    std::vector<double> ev;
    if (ctx.rank() == 0) {
      ev.resize(3 * kTypes);
      for (int i = 0; i < 3 * kTypes; ++i) ev[i] = i * 0.25;
    }
    ctx.barrier();
    int overlaps = 0;
    set_evec_directive(members, ev, kTypes, local, target,
                       [&](int) { ++overlaps; });
    if (ctx.rank() != 0) {
      int owned = 0;
      for (int t = 0; t < kTypes; ++t) {
        if (spin_owner(t, 5) != ctx.rank()) continue;
        ++owned;
        EXPECT_DOUBLE_EQ(local[3 * t], 3 * t * 0.25);
        EXPECT_DOUBLE_EQ(local[3 * t + 1], (3 * t + 1) * 0.25);
      }
      EXPECT_EQ(overlaps, owned);  // overlap block ran once per owned type
    } else {
      EXPECT_EQ(overlaps, 0);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllTargets, DirectiveEvecTest,
                         ::testing::Values(cid::core::Target::Mpi2Side,
                                           cid::core::Target::Shmem));

TEST(DirectiveComm, SetEvecSingleMemberIsNoOp) {
  spmd(1, [](RankCtx&) {
    double* local = cid::shmem::malloc_of<double>(3);
    std::vector<double> ev(3, 1.0);
    set_evec_directive({0}, ev, 1, local, cid::core::Target::Mpi2Side);
    SUCCEED();
  });
}

// --- topology ---------------------------------------------------------------

TEST(Topology, PaperSweepMatchesFigure3Axis) {
  const auto sweep = Topology::paper_nprocs_sweep();
  ASSERT_EQ(sweep.size(), 20u);
  EXPECT_EQ(sweep.front(), 33);
  EXPECT_EQ(sweep[1], 49);
  EXPECT_EQ(sweep.back(), 337);
  for (int nprocs : sweep) {
    const Topology topo{nprocs, 16};
    EXPECT_TRUE(topo.valid());
  }
}

TEST(Topology, MembersAndInstanceMapping) {
  const Topology topo{33, 16};  // 16 instances x 2 ranks
  EXPECT_EQ(topo.ranks_per_lsms(), 2);
  EXPECT_EQ(topo.lsms_of(0), -1);
  EXPECT_EQ(topo.lsms_of(1), 0);
  EXPECT_EQ(topo.lsms_of(2), 0);
  EXPECT_EQ(topo.lsms_of(3), 1);
  EXPECT_EQ(topo.lsms_of(32), 15);
  const auto members = topo.lsms_members(3);
  EXPECT_EQ(members, (std::vector<int>{7, 8}));
}

TEST(Topology, EveryRankBelongsSomewhere) {
  const Topology topo{49, 16};
  std::vector<int> seen(49, 0);
  seen[0] = 1;  // WL
  for (int i = 0; i < 16; ++i) {
    for (int member : topo.lsms_members(i)) ++seen[member];
  }
  for (int r = 0; r < 49; ++r) EXPECT_EQ(seen[r], 1) << "rank " << r;
}

// --- experiment drivers: the Figure 4 ratios --------------------------------

class SpinRatioTest : public ::testing::Test {
 protected:
  // Small but representative scale: 1 WL + 4 LSMS x 4 ranks. Enough WL
  // steps to amortize the directive's one-time persistent-request setup,
  // as the paper's long main loop does.
  ExperimentConfig config() const {
    ExperimentConfig c;
    c.nprocs = 17;
    c.num_lsms = 4;
    c.natoms = 16;
    c.wl_steps = 24;
    return c;
  }
};

TEST_F(SpinRatioTest, WaitallValidationVariantIsAbout2_6x) {
  const double original = run_spin_scatter(config(), Variant::Original);
  const double waitall = run_spin_scatter(config(), Variant::OriginalWaitall);
  const double ratio = original / waitall;
  EXPECT_GT(ratio, 1.8) << original << " vs " << waitall;
  EXPECT_LT(ratio, 3.6);
}

TEST_F(SpinRatioTest, DirectiveMpiIsAbout4x) {
  const double original = run_spin_scatter(config(), Variant::Original);
  const double directive = run_spin_scatter(config(), Variant::DirectiveMpi);
  const double ratio = original / directive;
  EXPECT_GT(ratio, 2.5) << original << " vs " << directive;
  EXPECT_LT(ratio, 6.5);
}

TEST_F(SpinRatioTest, DirectiveShmemIsTensOfX) {
  const double original = run_spin_scatter(config(), Variant::Original);
  const double directive = run_spin_scatter(config(), Variant::DirectiveShmem);
  const double ratio = original / directive;
  EXPECT_GT(ratio, 12.0) << original << " vs " << directive;
  EXPECT_LT(ratio, 80.0);
}

TEST_F(SpinRatioTest, OrderingMatchesPaper) {
  const double original = run_spin_scatter(config(), Variant::Original);
  const double waitall = run_spin_scatter(config(), Variant::OriginalWaitall);
  const double mpi = run_spin_scatter(config(), Variant::DirectiveMpi);
  const double shmem = run_spin_scatter(config(), Variant::DirectiveShmem);
  EXPECT_LT(waitall, original);
  EXPECT_LT(mpi, waitall);
  EXPECT_LT(shmem, mpi);
}

TEST(SingleAtomDriver, AllVariantsComparable) {
  // Figure 3's claim: original and both directive targets are comparable
  // for the (large-payload) single atom data distribution. Run at the
  // paper's smallest scale (33 ranks) where one-time costs are amortized.
  ExperimentConfig config;
  config.nprocs = 33;
  config.num_lsms = 16;
  config.natoms = 16;
  const double original =
      run_single_atom_distribution(config, Variant::Original);
  const double mpi =
      run_single_atom_distribution(config, Variant::DirectiveMpi);
  const double shmem =
      run_single_atom_distribution(config, Variant::DirectiveShmem);
  EXPECT_GT(original, 0.0);
  EXPECT_GT(mpi, 0.0);
  EXPECT_GT(shmem, 0.0);
  // Each directive target lands within a small factor of the original —
  // no order-of-magnitude separation as in Figure 4's small-message regime.
  EXPECT_LT(mpi / original, 2.0);
  EXPECT_GT(mpi / original, 0.5);
  EXPECT_LT(original / shmem, 3.0);
  EXPECT_GT(original / shmem, 1.0 / 3.0);
}

TEST(SingleAtomDriver, TimeGrowsWithScale) {
  ExperimentConfig small;
  small.nprocs = 9;
  small.num_lsms = 4;
  small.natoms = 8;
  ExperimentConfig large = small;
  large.nprocs = 33;  // more ranks per LSMS: more transfers off rank 0
  const double t_small =
      run_single_atom_distribution(small, Variant::Original);
  const double t_large =
      run_single_atom_distribution(large, Variant::Original);
  EXPECT_GT(t_large, t_small);
}

TEST(OverlapDriver, DirectiveOverlapBeatsSequential) {
  ExperimentConfig config;
  config.nprocs = 9;
  config.num_lsms = 4;
  config.natoms = 16;
  config.wl_steps = 3;
  const double sequential =
      run_spin_with_compute(config, Variant::Original);
  const double overlapped =
      run_spin_with_compute(config, Variant::DirectiveMpi);
  EXPECT_LT(overlapped, sequential);
}

TEST(OverlapDriver, GpuSpeedupShrinksComputePortion) {
  ExperimentConfig cpu;
  cpu.nprocs = 9;
  cpu.num_lsms = 4;
  cpu.wl_steps = 3;
  ExperimentConfig gpu = cpu;
  gpu.compute.gpu_speedup = 10.0;
  const double cpu_time = run_spin_with_compute(cpu, Variant::DirectiveMpi);
  const double gpu_time = run_spin_with_compute(gpu, Variant::DirectiveMpi);
  EXPECT_LT(gpu_time, cpu_time);
  // Compute dominates at 19:1, so a 10x compute speedup must cut the total
  // by a large factor.
  EXPECT_GT(cpu_time / gpu_time, 3.0);
}

TEST(Driver, InvalidTopologyRejected) {
  ExperimentConfig config;
  config.nprocs = 10;  // (10-1) % 16 != 0
  EXPECT_THROW(run_spin_scatter(config, Variant::Original), cid::CidError);
}

TEST(Driver, VariantNamesAreStable) {
  EXPECT_STREQ(variant_name(Variant::Original), "original");
  EXPECT_STREQ(variant_name(Variant::DirectiveShmem), "directive-shmem");
}

}  // namespace

namespace {

// --- full Wang-Landau round trip (Figure 1 + the Section V extension) -------

TEST(WlRoundtrip, EnergyIsDeterministicAcrossTargets) {
  ExperimentConfig config;
  config.nprocs = 9;
  config.num_lsms = 4;
  config.natoms = 8;
  config.wl_steps = 3;

  double energy_mpi = 0.0;
  double energy_shmem = 0.0;
  const double t_mpi =
      run_wl_roundtrip(config, cid::core::Target::Mpi2Side, &energy_mpi);
  const double t_shmem =
      run_wl_roundtrip(config, cid::core::Target::Shmem, &energy_shmem);
  EXPECT_GT(t_mpi, 0.0);
  EXPECT_GT(t_shmem, 0.0);
  // The physics result cannot depend on the communication target.
  EXPECT_DOUBLE_EQ(energy_mpi, energy_shmem);
  EXPECT_NE(energy_mpi, 0.0);

  // And rerunning the same target reproduces both time and energy exactly.
  double energy_again = 0.0;
  const double t_again =
      run_wl_roundtrip(config, cid::core::Target::Mpi2Side, &energy_again);
  EXPECT_DOUBLE_EQ(t_again, t_mpi);
  EXPECT_DOUBLE_EQ(energy_again, energy_mpi);
}

TEST(WlRoundtrip, ScalesAcrossTopologies) {
  // k >= 2: with one rank per LSMS there are no non-privileged members,
  // so no spins are scattered and no energies computed.
  for (int nprocs : {9, 17, 33}) {
    ExperimentConfig config;
    config.nprocs = nprocs;
    config.num_lsms = 4;
    config.natoms = 8;
    config.wl_steps = 2;
    double energy = 0.0;
    const double t =
        run_wl_roundtrip(config, cid::core::Target::Mpi2Side, &energy);
    EXPECT_GT(t, 0.0) << nprocs;
    EXPECT_NE(energy, 0.0) << nprocs;
  }
}

}  // namespace
