// Tests for cid::explore — the schedule-space model checker behind
// `cidt explore` — and the cross-layer fuzzer behind `cidt fuzz`.
//
// The two flagship cases mirror the committed examples: a wildcard value
// race (examples/explore_race.cpp) and a symbolic-guard ring deadlock
// (examples/explore_deadlock.cpp). In both, `cidt check` must stay clean
// apart from the symbolic-skip note — the defect is only findable by
// exploring schedules — and the witness schedule each diagnostic carries
// must replay the finding deterministically.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "explore/explore.hpp"
#include "explore/fuzz.hpp"

namespace {

using cid::explore::ExploreResult;
using cid::explore::Options;
using cid::explore::Witness;

// The committed examples, inlined so the tests do not depend on paths.
constexpr const char* kWildcardRace = R"(
int a[8]; int b[8]; int c[8]; int d[8];
int k;
void stage1(); void stage2();
void step() {
#pragma comm_p2p sbuf(a) rbuf(b) count(4) receiver(0) sender(k) sendwhen(rank==1) receivewhen(rank==0)
  { stage1(); }
#pragma comm_p2p sbuf(c) rbuf(d) count(4) receiver(0) sender(k) sendwhen(rank==2) receivewhen(rank==0)
  { stage2(); }
}
)";

constexpr const char* kGuardedRing = R"(
int a[8]; int b[8];
int k;
void exchange();
void step() {
#pragma comm_p2p sbuf(a) rbuf(b) count(4) receiver((rank+1)%nprocs) sender((rank+nprocs-1)%nprocs) sendwhen(k>0) receivewhen(rank>=0)
  { exchange(); }
}
)";

// Four wildcard receives across two ranks in ONE synchronization scope:
// rank 1 and rank 2 each hold two in-flight wildcard candidates at the
// same quiescence point, which is exactly where DPOR's lowest-rank rule
// prunes and naive enumeration does not.
constexpr const char* kTwoRankWildcards = R"(
int a[8]; int b[8]; int c[8]; int d[8];
int k;
void w0(); void w1(); void w2(); void w3();
void step() {
#pragma comm_parameters count(4)
  {
#pragma comm_p2p sbuf(a) rbuf(b) count(4) receiver(1) sendwhen(rank==0) sender(k) receivewhen(rank==1)
  { w0(); }
#pragma comm_p2p sbuf(a) rbuf(d) count(4) receiver(2) sendwhen(rank==0) sender(k) receivewhen(rank==2)
  { w1(); }
#pragma comm_p2p sbuf(c) rbuf(b) count(4) receiver(1) sendwhen(rank==2) sender(k) receivewhen(rank==1)
  { w2(); }
#pragma comm_p2p sbuf(c) rbuf(d) count(4) receiver(2) sendwhen(rank==1) sender(k) receivewhen(rank==2)
  { w3(); }
  }
}
)";

constexpr const char* kCleanRing = R"(
int a[8]; int b[8];
void shift();
void step() {
#pragma comm_p2p sbuf(a) rbuf(b) count(4) receiver((rank+1)%nprocs) sender((rank+nprocs-1)%nprocs)
  { shift(); }
}
)";

ExploreResult explore(const char* source, int nprocs, bool dpor = true) {
  Options options;
  options.nprocs = nprocs;
  options.dpor = dpor;
  auto result = cid::explore::explore_source(source, options);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  return result.is_ok() ? result.value() : ExploreResult{};
}

bool has(const ExploreResult& result, std::string_view id) {
  for (const auto& d : result.report.diagnostics) {
    if (d.id == id) return true;
  }
  return false;
}

const Witness& witness_of(const ExploreResult& result, std::string_view id) {
  for (const auto& w : result.witnesses) {
    if (w.id == id) return w;
  }
  static const Witness missing;
  EXPECT_TRUE(false) << "no witness for " << id;
  return missing;
}

// --- the two flagship defects the static layer cannot see -------------------

TEST(Explore, FindsWildcardValueRaceWhereCheckIsClean) {
  // Static layer: nothing provable, nothing reported — only the skip count.
  cid::analyze::Options static_opts;
  static_opts.nprocs_min = 3;
  static_opts.nprocs_max = 3;
  const auto report = cid::analyze::analyze_source(kWildcardRace, static_opts);
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_EQ(report.symbolic_skips, 2);

  // Dynamic layer: the two producers race into rank 0's first wildcard
  // receive, and the competing messages come from different directives.
  const auto result = explore(kWildcardRace, 3);
  EXPECT_TRUE(has(result, "CID-E102"));
  EXPECT_GE(result.report.errors(), 1);
  EXPECT_EQ(result.symbolic_clauses, 2);
}

TEST(Explore, FindsSymbolicGuardDeadlockWhereCheckIsClean) {
  cid::analyze::Options static_opts;
  static_opts.nprocs_min = 3;
  static_opts.nprocs_max = 3;
  const auto report = cid::analyze::analyze_source(kGuardedRing, static_opts);
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_EQ(report.symbolic_skips, 1);

  // The all-guards-false branch leaves every rank waiting on its
  // predecessor: a full cycle (E100). Partial-guard branches strand
  // subsets without a cycle (E101).
  const auto result = explore(kGuardedRing, 3);
  EXPECT_TRUE(has(result, "CID-E100"));
  EXPECT_TRUE(has(result, "CID-E101"));
}

// --- witness replay ---------------------------------------------------------

TEST(Explore, WitnessScheduleReplaysTheDeadlockDeterministically) {
  const auto full = explore(kGuardedRing, 3);
  const Witness& witness = witness_of(full, "CID-E100");
  ASSERT_FALSE(witness.schedule.empty());

  Options replay_opts;
  replay_opts.nprocs = 3;
  replay_opts.schedule = witness.schedule;
  replay_opts.max_executions = 1;
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto replay = cid::explore::explore_source(kGuardedRing, replay_opts);
    ASSERT_TRUE(replay.is_ok());
    EXPECT_EQ(replay.value().executions, 1);
    EXPECT_TRUE(has(replay.value(), "CID-E100"));
    EXPECT_FALSE(has(replay.value(), "CID-E101"))
        << "single replayed execution reached a different outcome";
  }
}

TEST(Explore, WitnessScheduleReplaysTheRaceDeterministically) {
  const auto full = explore(kWildcardRace, 3);
  const Witness& witness = witness_of(full, "CID-E102");

  Options replay_opts;
  replay_opts.nprocs = 3;
  replay_opts.schedule = witness.schedule;
  replay_opts.max_executions = 1;
  auto replay = cid::explore::explore_source(kWildcardRace, replay_opts);
  ASSERT_TRUE(replay.is_ok());
  EXPECT_EQ(replay.value().executions, 1);
  EXPECT_TRUE(has(replay.value(), "CID-E102"));
}

// --- DPOR reduction ---------------------------------------------------------

TEST(Explore, DporExploresStrictlyFewerExecutionsThanNaive) {
  const auto dpor = explore(kTwoRankWildcards, 3, /*dpor=*/true);
  const auto naive = explore(kTwoRankWildcards, 3, /*dpor=*/false);
  EXPECT_FALSE(dpor.truncated);
  EXPECT_FALSE(naive.truncated);
  EXPECT_LT(dpor.executions, naive.executions)
      << "DPOR must prune the schedule tree";
  EXPECT_GT(dpor.executions, 1);

  // Reduction must not cost findings: same diagnostic IDs both ways.
  auto ids = [](const ExploreResult& r) {
    std::set<std::string> s;
    for (const auto& d : r.report.diagnostics) s.insert(d.id);
    return s;
  };
  EXPECT_EQ(ids(dpor), ids(naive));
  EXPECT_TRUE(has(dpor, "CID-E102"));
  EXPECT_TRUE(has(dpor, "CID-E105"));  // b and d are each reused in flight
}

// --- determinism and clean programs -----------------------------------------

TEST(Explore, IdenticalRunsProduceIdenticalResults) {
  const auto first = explore(kGuardedRing, 3);
  const auto second = explore(kGuardedRing, 3);
  EXPECT_EQ(first.executions, second.executions);
  EXPECT_EQ(first.decisions, second.decisions);
  ASSERT_EQ(first.report.diagnostics.size(), second.report.diagnostics.size());
  for (std::size_t i = 0; i < first.report.diagnostics.size(); ++i) {
    EXPECT_EQ(first.report.diagnostics[i].id, second.report.diagnostics[i].id);
    EXPECT_EQ(first.report.diagnostics[i].message,
              second.report.diagnostics[i].message);
  }
  ASSERT_EQ(first.witnesses.size(), second.witnesses.size());
  for (std::size_t i = 0; i < first.witnesses.size(); ++i) {
    EXPECT_EQ(first.witnesses[i].schedule, second.witnesses[i].schedule);
  }
}

TEST(Explore, FullyExactProgramIsOneCleanExecution) {
  const auto result = explore(kCleanRing, 4);
  EXPECT_EQ(result.executions, 1);  // no choice points at all
  EXPECT_TRUE(result.report.diagnostics.empty());
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.symbolic_clauses, 0);
}

TEST(Explore, RespectsExecutionBudgetAndReportsTruncation) {
  Options options;
  options.nprocs = 4;
  options.max_executions = 3;
  auto result = cid::explore::explore_source(kGuardedRing, options);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().executions, 3);
  EXPECT_TRUE(result.value().truncated);
}

// --- schedule round-trip ----------------------------------------------------

TEST(Explore, ScheduleFormatsAndParsesRoundTrip) {
  const std::vector<int> schedule = {1, 0, 2};
  const std::string text = cid::explore::format_schedule(schedule);
  EXPECT_EQ(text, "1,0,2");
  auto parsed = cid::explore::parse_schedule(text);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value(), schedule);

  EXPECT_EQ(cid::explore::format_schedule({}), "-");
  auto empty = cid::explore::parse_schedule("-");
  ASSERT_TRUE(empty.is_ok());
  EXPECT_TRUE(empty.value().empty());

  EXPECT_FALSE(cid::explore::parse_schedule("1,x,2").is_ok());
}

// --- the cross-layer fuzzer -------------------------------------------------

TEST(Fuzz, GenerationIsDeterministicPerSeed) {
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    EXPECT_EQ(cid::explore::generate_program(seed),
              cid::explore::generate_program(seed));
  }
  EXPECT_NE(cid::explore::generate_program(1),
            cid::explore::generate_program(2));
}

TEST(Fuzz, OneHundredSeedsProduceNoDivergence) {
  cid::explore::FuzzOptions options;
  options.nprocs = 3;
  int deadlocks = 0;
  int symbolic = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const auto outcome = cid::explore::fuzz_one(seed, options);
    EXPECT_FALSE(outcome.divergence)
        << "seed " << seed << ": " << outcome.detail << "\n"
        << outcome.program;
    if (outcome.explore_deadlock) ++deadlocks;
    if (outcome.analyze_symbolic_skips > 0) ++symbolic;
  }
  // The corpus must actually exercise the interesting territory, not just
  // pass vacuously.
  EXPECT_GT(deadlocks, 10);
  EXPECT_GT(symbolic, 10);
}

}  // namespace
