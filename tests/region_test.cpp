// End-to-end tests of the directive executor: the paper's Listings 1-3
// expressed through the embedded API, on all three targets, with clause
// inheritance, count inference, sync consolidation and overlap.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/core.hpp"
#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"
#include "shmem/shmem.hpp"

namespace {

using namespace cid::core;
using cid::rt::RankCtx;
using cid::simnet::MachineModel;

void spmd(int nranks, const cid::rt::RankFn& fn) {
  cid::rt::run(nranks, MachineModel::zero(), fn);
}

// Paper Listing 1: ring pattern with only the required clauses.
TEST(Directive, Listing1RingPattern) {
  spmd(6, [](RankCtx& ctx) {
    double buf1[4];
    double buf2[4] = {};
    for (int i = 0; i < 4; ++i) buf1[i] = ctx.rank() * 10.0 + i;

    comm_p2p(Clauses()
                 .sender("(rank-1+nprocs)%nprocs")
                 .receiver("(rank+1)%nprocs")
                 .sbuf(buf(buf1, "buf1"))
                 .rbuf(buf(buf2, "buf2")));

    const int prev = (ctx.rank() - 1 + ctx.nranks()) % ctx.nranks();
    for (int i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(buf2[i], prev * 10.0 + i);
    }
  });
}

// Paper Listing 2: even ranks send to the next odd rank.
TEST(Directive, Listing2EvenToOdd) {
  spmd(8, [](RankCtx& ctx) {
    int buf1[2] = {ctx.rank(), ctx.rank() + 1000};
    int buf2[2] = {-1, -1};

    comm_p2p(Clauses()
                 .sbuf(buf(buf1))
                 .rbuf(buf(buf2))
                 .sender("rank-1")
                 .receiver("rank+1")
                 .sendwhen("rank%2==0")
                 .receivewhen("rank%2==1"));

    if (ctx.rank() % 2 == 1) {
      EXPECT_EQ(buf2[0], ctx.rank() - 1);
      EXPECT_EQ(buf2[1], ctx.rank() - 1 + 1000);
    } else {
      EXPECT_EQ(buf2[0], -1);  // even ranks receive nothing
    }
  });
}

// Boundary safety: the receiver clause is only evaluated on sending ranks,
// so the last rank's out-of-range neighbour expression is never evaluated.
TEST(Directive, GuardsPreventOutOfRangeNeighbourEvaluation) {
  spmd(4, [](RankCtx& ctx) {
    int out[1] = {ctx.rank()};
    int in[1] = {-1};
    comm_p2p(Clauses()
                 .sbuf(buf(out))
                 .rbuf(buf(in))
                 .sender("rank-1")
                 .receiver("rank+1")
                 .sendwhen("rank<nprocs-1")
                 .receivewhen("rank>0"));
    if (ctx.rank() > 0) { EXPECT_EQ(in[0], ctx.rank() - 1); }
  });
}

TEST(Directive, CountInferenceUsesSmallestArray) {
  spmd(2, [](RankCtx& ctx) {
    double big_send[10];
    double small_recv[6] = {};
    std::iota(big_send, big_send + 10, 0.0);

    comm_p2p(Clauses()
                 .sender(0)
                 .receiver(1)
                 .sendwhen("rank==0")
                 .receivewhen("rank==1")
                 .sbuf(buf(big_send))
                 .rbuf(buf(small_recv)));

    if (ctx.rank() == 1) {
      // count inferred as min(10, 6) = 6
      EXPECT_DOUBLE_EQ(small_recv[5], 5.0);
    }
  });
}

TEST(Directive, ExplicitCountClauseWins) {
  spmd(2, [](RankCtx& ctx) {
    double send[8];
    double recv[8] = {};
    std::iota(send, send + 8, 1.0);
    comm_p2p(Clauses()
                 .sender(0)
                 .receiver(1)
                 .sendwhen("rank==0")
                 .receivewhen("rank==1")
                 .count(3)
                 .sbuf(buf(send))
                 .rbuf(buf(recv)));
    if (ctx.rank() == 1) {
      EXPECT_DOUBLE_EQ(recv[2], 3.0);
      EXPECT_DOUBLE_EQ(recv[3], 0.0);  // only 3 elements moved
    }
  });
}

TEST(Directive, CountRequiredWhenNoArrayExtent) {
  EXPECT_THROW(spmd(2,
                    [](RankCtx&) {
                      double x = 0.0;
                      double y = 0.0;
                      comm_p2p(Clauses()
                                   .sender(0)
                                   .receiver(1)
                                   .sbuf(buf(&x))
                                   .rbuf(buf(&y)));
                    }),
               cid::CidError);
}

TEST(Directive, MissingRequiredClauseThrows) {
  EXPECT_THROW(spmd(2,
                    [](RankCtx&) {
                      double a[2], b[2];
                      comm_p2p(Clauses().sbuf(buf(a)).rbuf(buf(b)));
                    }),
               cid::CidError);
}

TEST(Directive, BufferListsFanOut) {
  // Paper Listing 5 shape: several buffers in one directive.
  spmd(2, [](RankCtx& ctx) {
    std::vector<double> vr(16), rhotot(16);
    std::vector<double> vr_in(16), rhotot_in(16);
    std::iota(vr.begin(), vr.end(), 0.0);
    std::iota(rhotot.begin(), rhotot.end(), 100.0);

    comm_p2p(Clauses()
                 .sender(0)
                 .receiver(1)
                 .sendwhen("rank==0")
                 .receivewhen("rank==1")
                 .count(16)
                 .sbuf({buf(vr, "vr"), buf(rhotot, "rhotot")})
                 .rbuf({buf(vr_in, "vr"), buf(rhotot_in, "rhotot")}));

    if (ctx.rank() == 1) {
      EXPECT_DOUBLE_EQ(vr_in[15], 15.0);
      EXPECT_DOUBLE_EQ(rhotot_in[0], 100.0);
    }
  });
}

// --- composite (struct) buffers ---------------------------------------------

struct SpinScalars {
  int local_id;
  int jmt;
  double xstart;
  double evec[3];
  char header[8];
};

}  // namespace

CID_REFLECT_STRUCT(SpinScalars, local_id, jmt, xstart, evec, header)

namespace {

TEST(Directive, CompositeBufferUsesDerivedDatatype) {
  spmd(2, [](RankCtx& ctx) {
    SpinScalars data{};
    if (ctx.rank() == 0) {
      data = {7, 42, 1.25, {0.1, 0.2, 0.3}, {'a', 'b'}};
    }
    comm_p2p(Clauses()
                 .sender(0)
                 .receiver(1)
                 .sendwhen("rank==0")
                 .receivewhen("rank==1")
                 .count(1)
                 .sbuf(buf(data, "scalars"))
                 .rbuf(buf(data, "scalars")));
    if (ctx.rank() == 1) {
      EXPECT_EQ(data.local_id, 7);
      EXPECT_EQ(data.jmt, 42);
      EXPECT_DOUBLE_EQ(data.xstart, 1.25);
      EXPECT_DOUBLE_EQ(data.evec[2], 0.3);
      EXPECT_EQ(data.header[1], 'b');
    }
  });
}

struct BadComposite {
  int n;
  int* ptr;
};

}  // namespace

CID_REFLECT_STRUCT(BadComposite, n, ptr)

namespace {

TEST(Directive, CompositeWithPointerRejected) {
  EXPECT_THROW(spmd(2,
                    [](RankCtx&) {
                      BadComposite bad{};
                      comm_p2p(Clauses()
                                   .sender(0)
                                   .receiver(1)
                                   .count(1)
                                   .sbuf(buf(bad))
                                   .rbuf(buf(bad)));
                    }),
               cid::CidError);
}

// --- comm_parameters regions -------------------------------------------------

TEST(Directive, Listing3RegionWithLoop) {
  spmd(6, [](RankCtx& ctx) {
    constexpr int kIters = 5;
    double buf1[kIters];
    double buf2[kIters] = {};
    for (int p = 0; p < kIters; ++p) buf1[p] = ctx.rank() + p * 0.125;

    comm_parameters(
        Clauses()
            .sender("rank-1")
            .receiver("rank+1")
            .sendwhen("rank%2==0")
            .receivewhen("rank%2==1")
            .count(1)
            .max_comm_iter(kIters)
            .place_sync(SyncPlacement::EndParamRegion),
        [&](Region& region) {
          for (int p = 0; p < kIters; ++p) {
            region.p2p(Clauses().sbuf(buf(&buf1[p])).rbuf(buf(&buf2[p])));
          }
        });

    if (ctx.rank() % 2 == 1) {
      for (int p = 0; p < kIters; ++p) {
        EXPECT_DOUBLE_EQ(buf2[p], (ctx.rank() - 1) + p * 0.125);
      }
    }
  });
}

TEST(Directive, RegionClauseInheritanceAndOverride) {
  spmd(3, [](RankCtx& ctx) {
    int a[2] = {ctx.rank() * 2, ctx.rank() * 2 + 1};
    int b[2] = {-1, -1};
    int c[2] = {-1, -1};
    comm_parameters(
        Clauses().sender(0).receiver("rank==0?1:0").sendwhen("rank==0")
            .receivewhen("rank==1"),
        [&](Region& region) {
          // Inherits everything; rank 0 -> rank 1.
          region.p2p(Clauses().sbuf(buf(a)).rbuf(buf(b)));
          // Overrides the receiver: rank 0 -> rank 2.
          region.p2p(Clauses().sbuf(buf(a)).rbuf(buf(c)).receiver(2)
                         .receivewhen("rank==2").sendwhen("rank==0"));
        });
    if (ctx.rank() == 1) {
      EXPECT_EQ(b[0], 0);
      EXPECT_EQ(c[0], -1);
    }
    if (ctx.rank() == 2) {
      EXPECT_EQ(b[0], -1);
      EXPECT_EQ(c[0], 0);
    }
  });
}

TEST(Directive, StandalonePlaceSyncOnP2PThrows) {
  EXPECT_THROW(spmd(1,
                    [](RankCtx&) {
                      double a[1], b[1];
                      comm_p2p(Clauses()
                                   .sender(0)
                                   .receiver(0)
                                   .sbuf(buf(a))
                                   .rbuf(buf(b))
                                   .place_sync(SyncPlacement::EndParamRegion));
                    }),
               cid::CidError);
}

TEST(Directive, NestedRegionsInherit) {
  spmd(2, [](RankCtx& ctx) {
    double a[2] = {ctx.rank() + 0.5, ctx.rank() + 1.5};
    double b[2] = {};
    comm_parameters(
        Clauses().sender(0).receiver(1).sendwhen("rank==0").receivewhen(
            "rank==1"),
        [&](Region&) {
          comm_parameters(Clauses().count(2), [&](Region& inner) {
            inner.p2p(Clauses().sbuf(buf(a)).rbuf(buf(b)));
          });
        });
    if (ctx.rank() == 1) {
      EXPECT_DOUBLE_EQ(b[0], 0.5);
      EXPECT_DOUBLE_EQ(b[1], 1.5);
    }
  });
}

// --- targets -------------------------------------------------------------

TEST(Directive, ShmemTargetMovesData) {
  spmd(4, [](RankCtx& ctx) {
    namespace shmem = cid::shmem;
    double* rbuf_sym = shmem::malloc_of<double>(4);
    std::fill(rbuf_sym, rbuf_sym + 4, -1.0);
    double sbuf_local[4];
    for (int i = 0; i < 4; ++i) sbuf_local[i] = ctx.rank() * 100.0 + i;
    ctx.barrier();

    comm_p2p(Clauses()
                 .sender("(rank-1+nprocs)%nprocs")
                 .receiver("(rank+1)%nprocs")
                 .count(4)
                 .target(Target::Shmem)
                 .sbuf(buf(sbuf_local))
                 .rbuf(buf_n(rbuf_sym, 4)));

    const int prev = (ctx.rank() - 1 + ctx.nranks()) % ctx.nranks();
    for (int i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(rbuf_sym[i], prev * 100.0 + i);
    }
  });
}

TEST(Directive, ShmemTargetRequiresSymmetricRbuf) {
  EXPECT_THROW(spmd(2,
                    [](RankCtx&) {
                      double stack_rbuf[2] = {};
                      double sbuf_local[2] = {};
                      comm_p2p(Clauses()
                                   .sender(0)
                                   .receiver(1)
                                   .count(2)
                                   .target(Target::Shmem)
                                   .sbuf(buf(sbuf_local))
                                   .rbuf(buf(stack_rbuf)));
                    }),
               cid::CidError);
}

TEST(Directive, Mpi1SideTargetMovesData) {
  spmd(3, [](RankCtx& ctx) {
    double send[3];
    double recv[3] = {};
    for (int i = 0; i < 3; ++i) send[i] = ctx.rank() * 7.0 + i;

    comm_p2p(Clauses()
                 .sender("(rank-1+nprocs)%nprocs")
                 .receiver("(rank+1)%nprocs")
                 .target(Target::Mpi1Side)
                 .sbuf(buf(send))
                 .rbuf(buf(recv)));

    const int prev = (ctx.rank() - 1 + ctx.nranks()) % ctx.nranks();
    for (int i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(recv[i], prev * 7.0 + i);
    }
  });
}

TEST(Directive, AllTargetsProduceSameData) {
  for (Target target : {Target::Mpi2Side, Target::Mpi1Side, Target::Shmem}) {
    spmd(4, [&](RankCtx& ctx) {
      namespace shmem = cid::shmem;
      int* rbuf_mem = shmem::malloc_of<int>(8);  // symmetric works for all
      std::fill(rbuf_mem, rbuf_mem + 8, 0);
      int sbuf_mem[8];
      for (int i = 0; i < 8; ++i) sbuf_mem[i] = ctx.rank() * 1000 + i;
      ctx.barrier();

      comm_p2p(Clauses()
                   .sender("(rank-1+nprocs)%nprocs")
                   .receiver("(rank+1)%nprocs")
                   .count(8)
                   .target(target)
                   .sbuf(buf(sbuf_mem))
                   .rbuf(buf_n(rbuf_mem, 8)));

      const int prev = (ctx.rank() - 1 + ctx.nranks()) % ctx.nranks();
      for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(rbuf_mem[i], prev * 1000 + i) << "target "
                                                << static_cast<int>(target);
      }
    });
  }
}

// --- sync placement / consolidation ---------------------------------------

TEST(Directive, SyncConsolidationOneWaitallPerRegion) {
  // With independent buffers, a region of K adjacent p2p directives must
  // produce ONE waitall: total time ~= K * per-message + one waitall, not
  // K * (per-message + wait).
  const auto model = MachineModel::cray_xk7_gemini();
  constexpr int kMsgs = 32;

  auto directive_time = [&] {
    auto result = cid::rt::run(2, model, [&](RankCtx& ctx) {
      std::vector<double> out(3 * kMsgs), in(3 * kMsgs);
      comm_parameters(
          Clauses().sender(0).receiver(1).sendwhen("rank==0")
              .receivewhen("rank==1").count(3).max_comm_iter(kMsgs),
          [&](Region& region) {
            for (int p = 0; p < kMsgs; ++p) {
              region.p2p(
                  Clauses().sbuf(buf(&out[3 * p])).rbuf(buf(&in[3 * p])));
            }
          });
      (void)ctx;
    });
    return result.makespan();
  };

  auto wait_loop_time = [&] {
    auto result = cid::rt::run(2, model, [&](RankCtx& ctx) {
      namespace mpi = cid::mpi;
      auto world = mpi::Comm::world();
      std::vector<double> data(3 * kMsgs);
      if (ctx.rank() == 0) {
        std::vector<mpi::Request> reqs;
        for (int p = 0; p < kMsgs; ++p) {
          reqs.push_back(mpi::isend(world, &data[3 * p], 3, 1, p));
        }
        for (auto& r : reqs) mpi::wait(r);
      } else {
        std::vector<mpi::Request> reqs;
        for (int p = 0; p < kMsgs; ++p) {
          reqs.push_back(mpi::irecv(world, &data[3 * p], 3, 0, p));
        }
        for (auto& r : reqs) mpi::wait(r);
      }
    });
    return result.makespan();
  };

  EXPECT_LT(directive_time(), wait_loop_time());
}

TEST(Directive, OverlappingBuffersForceIntermediateSync) {
  // Two adjacent p2ps share a buffer: the second must not start before the
  // first completed (WAW on rbuf). Data correctness is the observable.
  spmd(2, [](RankCtx& ctx) {
    double stage[4] = {};
    double final_data[4] = {};
    double source[4];
    for (int i = 0; i < 4; ++i) source[i] = 10.0 + i;

    comm_parameters(
        Clauses().count(4), [&](Region& region) {
          // rank0 -> rank1 into stage
          region.p2p(Clauses()
                         .sender(0)
                         .receiver(1)
                         .sendwhen("rank==0")
                         .receivewhen("rank==1")
                         .sbuf(buf(source))
                         .rbuf(buf(stage)));
          // rank1 -> rank0 from stage (RAW dependence on stage)
          region.p2p(Clauses()
                         .sender(1)
                         .receiver(0)
                         .sendwhen("rank==1")
                         .receivewhen("rank==0")
                         .sbuf(buf(stage))
                         .rbuf(buf(final_data)));
        });

    if (ctx.rank() == 0) {
      for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(final_data[i], 10.0 + i);
    }
  });
}

TEST(Directive, PlaceSyncBeginNextRegion) {
  spmd(2, [](RankCtx& ctx) {
    double a[2] = {1.5, 2.5};
    double b[2] = {};
    double c[2] = {9.5, 8.5};
    double d[2] = {};
    comm_parameters(
        Clauses().sender(0).receiver(1).sendwhen("rank==0")
            .receivewhen("rank==1")
            .place_sync(SyncPlacement::BeginNextParamRegion),
        [&](Region& region) {
          region.p2p(Clauses().sbuf(buf(a)).rbuf(buf(b)));
        });
    // Synchronization deferred: completes at the start of this region.
    comm_parameters(
        Clauses().sender(0).receiver(1).sendwhen("rank==0")
            .receivewhen("rank==1"),
        [&](Region& region) {
          if (ctx.rank() == 1) {
            EXPECT_DOUBLE_EQ(b[0], 1.5);  // already synced at region begin
          }
          region.p2p(Clauses().sbuf(buf(c)).rbuf(buf(d)));
        });
    if (ctx.rank() == 1) {
      EXPECT_DOUBLE_EQ(d[0], 9.5);
    }
  });
}

TEST(Directive, PlaceSyncEndAdjacentRegions) {
  spmd(2, [](RankCtx& ctx) {
    double a[2] = {1.0, 2.0}, b[2] = {};
    double c[2] = {3.0, 4.0}, d[2] = {};
    // Two adjacent regions defer to the end of the series.
    comm_parameters(
        Clauses().sender(0).receiver(1).sendwhen("rank==0")
            .receivewhen("rank==1")
            .place_sync(SyncPlacement::EndAdjParamRegions),
        [&](Region& region) {
          region.p2p(Clauses().sbuf(buf(a)).rbuf(buf(b)));
        });
    comm_parameters(
        Clauses().sender(0).receiver(1).sendwhen("rank==0")
            .receivewhen("rank==1"),
        [&](Region& region) {
          region.p2p(Clauses().sbuf(buf(c)).rbuf(buf(d)));
        });
    // Second region has default END_PARAM_REGION: everything drained.
    if (ctx.rank() == 1) {
      EXPECT_DOUBLE_EQ(b[1], 2.0);
      EXPECT_DOUBLE_EQ(d[1], 4.0);
    }
  });
}

TEST(Directive, CommFlushDrainsDeferredSync) {
  spmd(2, [](RankCtx& ctx) {
    double a[2] = {5.0, 6.0}, b[2] = {};
    comm_parameters(
        Clauses().sender(0).receiver(1).sendwhen("rank==0")
            .receivewhen("rank==1")
            .place_sync(SyncPlacement::EndAdjParamRegions),
        [&](Region& region) {
          region.p2p(Clauses().sbuf(buf(a)).rbuf(buf(b)));
        });
    comm_flush();  // no further region follows
    if (ctx.rank() == 1) {
      EXPECT_DOUBLE_EQ(b[0], 5.0);
    }
  });
}

// --- overlap ---------------------------------------------------------------

TEST(Directive, OverlapBlockRunsBeforeSync) {
  spmd(2, [](RankCtx& ctx) {
    double a[2] = {1.0, 2.0};
    double b[2] = {};
    bool overlap_ran = false;
    comm_p2p(Clauses()
                 .sender(0)
                 .receiver(1)
                 .sendwhen("rank==0")
                 .receivewhen("rank==1")
                 .sbuf(buf(a))
                 .rbuf(buf(b)),
             [&] { overlap_ran = true; });
    EXPECT_TRUE(overlap_ran);
    if (ctx.rank() == 1) { EXPECT_DOUBLE_EQ(b[0], 1.0); }
  });
}

TEST(Directive, OverlapHidesCommunicationTime) {
  const auto model = MachineModel::cray_xk7_gemini();
  constexpr double kComputeSeconds = 500e-6;  // >> per-message cost

  auto run_variant = [&](bool overlapped) {
    auto result = cid::rt::run(2, model, [&](RankCtx& ctx) {
      std::vector<double> out(300), in(300);
      auto compute = [&] { ctx.charge_compute(kComputeSeconds); };
      comm_parameters(
          Clauses().sender(0).receiver(1).sendwhen("rank==0")
              .receivewhen("rank==1").count(3).max_comm_iter(100),
          [&](Region& region) {
            for (int p = 0; p < 100; ++p) {
              region.p2p(
                  Clauses().sbuf(buf(&out[3 * p])).rbuf(buf(&in[3 * p])));
            }
            if (overlapped && ctx.rank() == 1) compute();
          });
      if (!overlapped && ctx.rank() == 1) compute();
    });
    return result.makespan();
  };

  const double with_overlap = run_variant(true);
  const double without_overlap = run_variant(false);
  // Overlapped: communication hides under the compute block.
  EXPECT_LT(with_overlap, without_overlap);
}

// --- virtual-time shape: directive beats hand-written wait loop -------------

TEST(Directive, ShmemTargetFasterThanMpiForSmallMessages) {
  const auto model = MachineModel::cray_xk7_gemini();
  constexpr int kMsgs = 64;

  auto run_target = [&](Target target) {
    auto result = cid::rt::run(2, model, [&](RankCtx& ctx) {
      namespace shmem = cid::shmem;
      double* in = shmem::malloc_of<double>(3 * kMsgs);
      std::vector<double> out(3 * kMsgs, 1.0);
      ctx.barrier();
      comm_parameters(
          Clauses().sender(0).receiver(1).sendwhen("rank==0")
              .receivewhen("rank==1").count(3).max_comm_iter(kMsgs)
              .target(target),
          [&](Region& region) {
            for (int p = 0; p < kMsgs; ++p) {
              region.p2p(
                  Clauses().sbuf(buf(&out[3 * p])).rbuf(buf(&in[3 * p])));
            }
          });
    });
    return result.makespan();
  };

  const double mpi_time = run_target(Target::Mpi2Side);
  const double shmem_time = run_target(Target::Shmem);
  EXPECT_LT(shmem_time, mpi_time);
  // The paper's regime: several-fold advantage for small transfers.
  EXPECT_GT(mpi_time / shmem_time, 2.0);
}

TEST(Directive, OutsideSpmdRegionThrows) {
  double a[1], b[1];
  EXPECT_THROW(
      comm_p2p(Clauses().sender(0).receiver(0).sbuf(buf(a)).rbuf(buf(b))),
      cid::CidError);
  EXPECT_THROW(comm_parameters(Clauses(), [](Region&) {}), cid::CidError);
  EXPECT_THROW(comm_flush(), cid::CidError);
}

}  // namespace

namespace {

// Regression: a SHMEM-targeted site whose SENDER CHANGES between epochs must
// keep its completion flags correct (per-source flag slots; a single shared
// counter deadlocks when the writer changes).
TEST(Directive, ShmemSiteWithChangingSenders) {
  spmd(4, [](RankCtx& ctx) {
    namespace shmem = cid::shmem;
    double* inbox = shmem::malloc_of<double>(2);
    double outbox[2];
    ctx.barrier();
    // Rounds with different (from, to) pairs through the SAME lexical site.
    const int froms[] = {0, 2, 1, 3, 0, 2};
    const int tos[] = {1, 3, 0, 2, 3, 1};
    for (int round = 0; round < 6; ++round) {
      const int from = froms[round];
      const int to = tos[round];
      outbox[0] = ctx.rank() * 10.0 + round;
      outbox[1] = -outbox[0];
      comm_p2p(Clauses()
                   .sender(from)
                   .receiver(to)
                   .sendwhen([&]() -> ExprValue { return ctx.rank() == from; })
                   .receivewhen([&]() -> ExprValue { return ctx.rank() == to; })
                   .count(2)
                   .target(Target::Shmem)
                   .sbuf(buf(outbox))
                   .rbuf(buf_n(inbox, 2)));
      if (ctx.rank() == to) {
        EXPECT_DOUBLE_EQ(inbox[0], from * 10.0 + round) << "round " << round;
        EXPECT_DOUBLE_EQ(inbox[1], -(from * 10.0 + round));
      }
      ctx.barrier();
    }
  });
}

// Regression: ranks that never execute a SHMEM-targeted site (here: rank 2)
// must not skew the flag allocation of ranks that do.
TEST(Directive, ShmemSiteSkippedBySomeRanks) {
  spmd(3, [](RankCtx& ctx) {
    namespace shmem = cid::shmem;
    double* inbox = shmem::malloc_of<double>(1);
    double outbox[1] = {ctx.rank() + 0.5};
    ctx.barrier();
    if (ctx.rank() != 2) {
      comm_p2p(Clauses()
                   .sender(0)
                   .receiver(1)
                   .sendwhen("rank==0")
                   .receivewhen("rank==1")
                   .count(1)
                   .target(Target::Shmem)
                   .sbuf(buf(outbox))
                   .rbuf(buf_n(inbox, 1)));
    }
    if (ctx.rank() == 1) { EXPECT_DOUBLE_EQ(inbox[0], 0.5); }
    ctx.barrier();
    // Rank 2 now makes a user allocation; offsets must still be symmetric.
    double* later = shmem::malloc_of<double>(4);
    ctx.barrier();
    if (ctx.rank() == 0) {
      double v = 9.25;
      shmem::put(later, &v, 1, 2);
    }
    shmem::barrier_all();
    if (ctx.rank() == 2) { EXPECT_DOUBLE_EQ(later[0], 9.25); }
  });
}

}  // namespace
