// Tests for the source-to-source translator: clause inheritance resolved
// statically, codegen for all three targets, sync placement, count
// inference, and error reporting.
#include <gtest/gtest.h>

#include "common/strings.hpp"
#include "translate/translator.hpp"

namespace {

using cid::contains;
using cid::translate::Options;
using cid::translate::translate_source;

std::string translate_ok(const std::string& source, Options options = {}) {
  auto result = translate_source(source, options);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  return result.is_ok() ? result.value().source : std::string{};
}

// Paper Listing 1.
constexpr const char* kListing1 = R"(
prev = (rank-1+nprocs)%nprocs;
next = (rank+1)%nprocs;
#pragma comm_p2p sender(prev) receiver(next) sbuf(buf1) rbuf(buf2)
{ }
)";

TEST(Translate, Listing1GeneratesNonblockingMpi) {
  const std::string out = translate_ok(kListing1);
  EXPECT_TRUE(contains(out, "cid::mpi::irecv"));
  EXPECT_TRUE(contains(out, "cid::mpi::isend"));
  EXPECT_TRUE(contains(out, "cid::mpi::waitall"));
  EXPECT_TRUE(contains(out, "(prev)"));
  EXPECT_TRUE(contains(out, "(next)"));
  // Original non-directive lines preserved.
  EXPECT_TRUE(contains(out, "prev = (rank-1+nprocs)%nprocs;"));
  // No pragma left behind.
  EXPECT_FALSE(contains(out, "#pragma comm_p2p"));
}

TEST(Translate, CountInferredFromArrays) {
  const std::string out = translate_ok(kListing1);
  EXPECT_TRUE(contains(out, "smallest_extent(buf1, buf2)"));
}

TEST(Translate, ExplicitCountPassedVerbatim) {
  const std::string out = translate_ok(R"(
#pragma comm_p2p sender(prev) receiver(next) sbuf(a) rbuf(b) count(3*n)
{ }
)");
  EXPECT_TRUE(contains(out, "(3*n)"));
  EXPECT_FALSE(contains(out, "smallest_extent"));
}

// Paper Listing 2: guards become if statements.
TEST(Translate, Listing2GuardsBecomeConditionals) {
  const std::string out = translate_ok(R"(
#pragma comm_p2p sbuf(buf1) rbuf(buf2) sender(rank-1) receiver(rank+1) sendwhen(rank%2==0) receivewhen(rank%2==1)
{ }
)");
  EXPECT_TRUE(contains(out, "if (rank%2==0)"));
  EXPECT_TRUE(contains(out, "if (rank%2==1)"));
}

// Paper Listing 3: region with loop, clause inheritance, backslash
// continuations.
constexpr const char* kListing3 = R"(
#pragma comm_parameters sender(rank-1) \
    receiver(rank+1) sendwhen(rank%2==0) \
    receivewhen(rank%2==1) count(size) \
    max_comm_iter(n) place_sync(END_PARAM_REGION)
{
for(p=0; p < n; p++)
#pragma comm_p2p sbuf(&buf1[p]) rbuf(&buf2[p])
{ }
}
)";

TEST(Translate, Listing3RegionInheritsClauses) {
  auto result = translate_source(kListing3);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const std::string& out = result.value().source;
  // The nested p2p inherited sender/receiver/count from the region.
  EXPECT_TRUE(contains(out, "(rank-1)"));
  EXPECT_TRUE(contains(out, "(rank+1)"));
  EXPECT_TRUE(contains(out, "(size)"));
  EXPECT_TRUE(contains(out, "&buf1[p]"));
  EXPECT_TRUE(contains(out, "&buf2[p]"));
  // Exactly one consolidated waitall for the whole region.
  EXPECT_EQ(result.value().summary.consolidated_syncs, 1);
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = out.find("waitall", pos)) != std::string::npos) {
    ++count;
    pos += 7;
  }
  EXPECT_EQ(count, 1u);
  // The for loop survives around the posting code.
  EXPECT_TRUE(contains(out, "for(p=0; p < n; p++)"));
}

TEST(Translate, ShmemTargetGeneratesPuts) {
  const std::string out = translate_ok(R"(
#pragma comm_p2p sender(prev) receiver(next) sbuf(src) rbuf(dst) count(4) target(TARGET_COMM_SHMEM)
{ }
)");
  EXPECT_TRUE(contains(out, "cid::shmem::putmem"));
  EXPECT_TRUE(contains(out, "cid::shmem::barrier_all"));
  EXPECT_FALSE(contains(out, "isend"));
}

TEST(Translate, Mpi1SideTargetGeneratesPutAndFence) {
  const std::string out = translate_ok(R"(
#pragma comm_p2p sender(prev) receiver(next) sbuf(src) rbuf(dst) count(4) target(TARGET_COMM_MPI_1SIDE)
{ }
)");
  EXPECT_TRUE(contains(out, "cid::mpi::Win::create"));
  EXPECT_TRUE(contains(out, ".put("));
  EXPECT_TRUE(contains(out, ".fence()"));
}

TEST(Translate, DefaultTargetOptionApplies) {
  Options options;
  options.default_target = cid::core::Target::Shmem;
  const std::string out = translate_ok(R"(
#pragma comm_p2p sender(prev) receiver(next) sbuf(a) rbuf(b) count(1)
{ }
)",
                                       options);
  EXPECT_TRUE(contains(out, "putmem"));
}

TEST(Translate, TargetClauseOverridesDefault) {
  Options options;
  options.default_target = cid::core::Target::Shmem;
  const std::string out = translate_ok(R"(
#pragma comm_p2p sender(prev) receiver(next) sbuf(a) rbuf(b) count(1) target(TARGET_COMM_MPI_2SIDE)
{ }
)",
                                       options);
  EXPECT_TRUE(contains(out, "isend"));
  EXPECT_FALSE(contains(out, "putmem"));
}

TEST(Translate, BufferListsFanOutToCalls) {
  const std::string out = translate_ok(R"(
#pragma comm_p2p sender(f) receiver(t) sbuf(ec,nc,lc,kc) rbuf(ec,nc,lc,kc) count(size2)
{ }
)");
  // Four receives and four sends.
  std::size_t sends = 0, recvs = 0, pos = 0;
  while ((pos = out.find("isend", pos)) != std::string::npos) {
    ++sends;
    pos += 5;
  }
  pos = 0;
  while ((pos = out.find("irecv", pos)) != std::string::npos) {
    ++recvs;
    pos += 5;
  }
  EXPECT_EQ(sends, 4u);
  EXPECT_EQ(recvs, 4u);
}

TEST(Translate, OverlapBlockEmbedded) {
  const std::string out = translate_ok(R"(
#pragma comm_p2p sender(s) receiver(r) sbuf(a) rbuf(b) count(1)
{
  calculateCoreState(comm, lsms, local, recv_p, !core_states_done);
}
)");
  EXPECT_TRUE(contains(out, "calculateCoreState(comm, lsms, local"));
  // The overlap body sits between the posts and the waitall.
  const std::size_t post = out.find("isend");
  const std::size_t body = out.find("calculateCoreState");
  const std::size_t sync = out.find("waitall");
  ASSERT_NE(post, std::string::npos);
  ASSERT_NE(body, std::string::npos);
  ASSERT_NE(sync, std::string::npos);
  EXPECT_LT(post, body);
  EXPECT_LT(body, sync);
}

TEST(Translate, SingleStatementBodyAccepted) {
  const std::string out = translate_ok(R"(
#pragma comm_p2p sender(s) receiver(r) sbuf(a) rbuf(b) count(1)
do_work(p);
)");
  EXPECT_TRUE(contains(out, "do_work(p);"));
  EXPECT_TRUE(contains(out, "waitall"));
}

TEST(Translate, PlaceSyncBeginNextRegionDefers) {
  auto result = translate_source(R"(
#pragma comm_parameters sender(0) receiver(1) count(1) place_sync(BEGIN_NEXT_PARAM_REGION)
{
#pragma comm_p2p sbuf(a) rbuf(b)
{ }
}
#pragma comm_parameters sender(0) receiver(1) count(1)
{
#pragma comm_p2p sbuf(c) rbuf(d)
{ }
}
)");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const std::string& out = result.value().source;
  // The first region's waitall must appear INSIDE the second region, before
  // the second region's own posting code.
  const std::size_t first_wait = out.find("waitall(cid_reqs_1)");
  const std::size_t second_region_post = out.find("cid_reqs_");
  const std::size_t second_wait = out.find("waitall(cid_reqs_", first_wait + 1);
  ASSERT_NE(first_wait, std::string::npos);
  ASSERT_NE(second_wait, std::string::npos);
  EXPECT_GT(first_wait, second_region_post);
}

TEST(Translate, EndAdjacentRegionsDrainAtSeriesEnd) {
  auto result = translate_source(R"(
#pragma comm_parameters sender(0) receiver(1) count(1) place_sync(END_ADJ_PARAM_REGIONS)
{
#pragma comm_p2p sbuf(a) rbuf(b)
{ }
}
#pragma comm_parameters sender(0) receiver(1) count(1)
{
#pragma comm_p2p sbuf(c) rbuf(d)
{ }
}
)");
  ASSERT_TRUE(result.is_ok());
  const std::string& out = result.value().source;
  // Both waitalls appear, and the deferred one is at the second region's end
  // (after the second region's posting code).
  const std::size_t deferred = out.find("waitall(cid_reqs_1)");
  const std::size_t second_post = out.rfind("isend");
  ASSERT_NE(deferred, std::string::npos);
  EXPECT_GT(deferred, second_post);
}

TEST(Translate, DeferredSyncWithoutNextRegionWarnsAndDrains) {
  auto result = translate_source(R"(
#pragma comm_parameters sender(0) receiver(1) count(1) place_sync(BEGIN_NEXT_PARAM_REGION)
{
#pragma comm_p2p sbuf(a) rbuf(b)
{ }
}
)");
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(contains(result.value().source, "WARNING"));
  EXPECT_TRUE(contains(result.value().source, "waitall"));
}

TEST(Translate, SourceWithoutDirectivesIsUnchanged) {
  const std::string source = "int main() { return 0; }\n";
  auto result = translate_source(source);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().source, source);
  EXPECT_EQ(result.value().summary.p2p_directives, 0);
}

TEST(Translate, OtherPragmasLeftAlone) {
  const std::string source = "#pragma omp parallel for\nfor(;;) {}\n";
  auto result = translate_source(source);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().source, source);
}

TEST(Translate, BracesInStringsAndCommentsIgnored) {
  const std::string out = translate_ok(R"(
#pragma comm_p2p sender(s) receiver(r) sbuf(a) rbuf(b) count(1)
{
  const char* text = "closing } brace";
  // also a } here
  /* and { here */
  work(text);
}
)");
  EXPECT_TRUE(contains(out, "closing } brace"));
  EXPECT_TRUE(contains(out, "waitall"));
}

TEST(Translate, ErrorsCarryLineNumbers) {
  auto bad_clause = translate_source(R"(
int x;
#pragma comm_p2p bogus(1)
{ }
)");
  ASSERT_FALSE(bad_clause.is_ok());
  EXPECT_TRUE(contains(bad_clause.status().message(), "line 3"));

  auto no_block = translate_source(
      "#pragma comm_p2p sender(s) receiver(r) sbuf(a) rbuf(b)");
  EXPECT_FALSE(no_block.is_ok());

  auto unbalanced = translate_source(R"(
#pragma comm_p2p sender(s) receiver(r) sbuf(a) rbuf(b)
{ if (x) {
)");
  EXPECT_FALSE(unbalanced.is_ok());
}

TEST(Translate, MissingRequiredClausesRejected) {
  auto result = translate_source(R"(
#pragma comm_p2p sbuf(a) rbuf(b)
{ }
)");
  EXPECT_FALSE(result.is_ok());
  EXPECT_TRUE(contains(result.status().message(), "sender"));
}

TEST(Translate, SummaryCounts) {
  auto result = translate_source(kListing3);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().summary.parameter_regions, 1);
  EXPECT_EQ(result.value().summary.p2p_directives, 1);
}

TEST(Translate, AnnotationsCanBeDisabled) {
  Options options;
  options.annotate = false;
  const std::string out = translate_ok(kListing1, options);
  EXPECT_FALSE(contains(out, "cid-translate:"));
}

}  // namespace

namespace {

TEST(Translate, NestedRegionsInheritTransitively) {
  auto result = translate_source(R"(
#pragma comm_parameters sender(rank-1) receiver(rank+1) sendwhen(rank%2==0) receivewhen(rank%2==1)
{
#pragma comm_parameters count(8)
{
#pragma comm_p2p sbuf(a) rbuf(b)
{ }
}
}
)");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const std::string& out = result.value().source;
  // The innermost p2p inherited sender/receiver from the outer region and
  // count from the inner one.
  EXPECT_TRUE(contains(out, "(rank-1)"));
  EXPECT_TRUE(contains(out, "(rank+1)"));
  EXPECT_TRUE(contains(out, "(8)"));
  EXPECT_EQ(result.value().summary.parameter_regions, 2);
  EXPECT_EQ(result.value().summary.p2p_directives, 1);
}

TEST(Translate, InnerRegionOverridesOuterClause) {
  auto result = translate_source(R"(
#pragma comm_parameters count(4) sender(0) receiver(1)
{
#pragma comm_parameters count(16)
{
#pragma comm_p2p sbuf(a) rbuf(b)
{ }
}
}
)");
  ASSERT_TRUE(result.is_ok());
  const std::string& out = result.value().source;
  EXPECT_TRUE(contains(out, "(16)"));
  // The overridden outer count must not appear in any generated call.
  EXPECT_FALSE(contains(out, "static_cast<std::size_t>(4)"));
}

TEST(Translate, RegionWhoseBodyIsABareDirective) {
  // comm_parameters followed directly by a nested directive (no braces), as
  // the paper's Listing 3 formatting allows.
  auto result = translate_source(R"(
#pragma comm_parameters sender(0) receiver(1) count(2)
#pragma comm_p2p sbuf(a) rbuf(b)
{ }
)");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().summary.parameter_regions, 1);
  EXPECT_EQ(result.value().summary.p2p_directives, 1);
  EXPECT_TRUE(contains(result.value().source, "waitall"));
}

TEST(Translate, MultipleIndependentP2PsShareRegionSync) {
  auto result = translate_source(R"(
#pragma comm_parameters sender(0) receiver(1) count(1)
{
#pragma comm_p2p sbuf(a) rbuf(b)
{ }
#pragma comm_p2p sbuf(c) rbuf(d)
{ }
#pragma comm_p2p sbuf(e) rbuf(f)
{ }
}
)");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().summary.p2p_directives, 3);
  EXPECT_EQ(result.value().summary.consolidated_syncs, 1);
  std::size_t waitalls = 0;
  std::size_t pos = 0;
  const std::string& out = result.value().source;
  while ((pos = out.find("waitall", pos)) != std::string::npos) {
    ++waitalls;
    pos += 7;
  }
  EXPECT_EQ(waitalls, 1u);
}


TEST(Translate, ReliabilityRegionLowersThroughEmbeddedApi) {
  auto result = translate_source(R"(
#pragma comm_parameters sender(rank-1) receiver(rank+1) count(4) reliability(100, 5)
{
#pragma comm_p2p sbuf(a) rbuf(b)
{ }
}
)");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const std::string& out = result.value().source;
  // The protocol lives in the runtime, so the region becomes an embedded-API
  // call instead of open-coded message passing.
  EXPECT_TRUE(contains(out, "::cid::core::comm_parameters("));
  EXPECT_TRUE(contains(out, ".reliability("));
  EXPECT_TRUE(contains(out, ".p2p("));
  EXPECT_FALSE(contains(out, "cid::mpi::isend"));
  EXPECT_FALSE(contains(out, "cid::mpi::waitall"));
  EXPECT_EQ(result.value().summary.reliable_regions, 1);
  EXPECT_EQ(result.value().summary.parameter_regions, 1);
}

TEST(Translate, ReliabilityRejectsNonMpi2SideTargets) {
  auto result = translate_source(R"(
#pragma comm_parameters sender(0) receiver(1) count(1) reliability(100, 5) target(TARGET_COMM_SHMEM)
{
#pragma comm_p2p sbuf(a) rbuf(b)
{ }
}
)");
  ASSERT_FALSE(result.is_ok());
  EXPECT_TRUE(contains(result.status().message(), "TARGET_COMM_MPI_2SIDE"));
}

TEST(Translate, ReliabilityRejectsCollectivesInRegion) {
  auto result = translate_source(R"(
#pragma comm_parameters reliability(100, 5)
{
#pragma comm_collective pattern(PATTERN_ONE_TO_MANY) root(0) sbuf(a) rbuf(b) count(4)
{ }
}
)");
  ASSERT_FALSE(result.is_ok());
  EXPECT_TRUE(contains(result.status().message(), "comm_collective"));
}

}  // namespace
