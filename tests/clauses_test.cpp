// Tests for the clause model: builder, inheritance (merge), validation
// rules, pragma parsing and clause construction from parsed pragmas.
#include <gtest/gtest.h>

#include "core/buffer.hpp"
#include "core/clauses.hpp"
#include "core/pragma.hpp"
#include "core/type_layout.hpp"

namespace {

using namespace cid::core;

// --- test fixtures for reflection ------------------------------------------

struct GoodScalars {
  int jmt;
  int jws;
  double xstart;
  double rmt;
  char header[80];
  double evec[3];
  int nspin;
};

struct HasPointer {
  int n;
  double* data;
};

struct Inner {
  int a;
};
struct HasNested {
  int n;
  Inner inner;
};

}  // namespace

CID_REFLECT_STRUCT(GoodScalars, jmt, jws, xstart, rmt, header, evec, nspin)
CID_REFLECT_STRUCT(HasPointer, n, data)
CID_REFLECT_STRUCT(HasNested, n, inner)

namespace {

TEST(TypeLayout, ReflectsFieldsWithOffsets) {
  const TypeLayout& layout = TypeLayoutOf<GoodScalars>::get();
  EXPECT_EQ(layout.name, "GoodScalars");
  EXPECT_EQ(layout.extent, sizeof(GoodScalars));
  ASSERT_EQ(layout.fields.size(), 7u);
  EXPECT_EQ(layout.fields[0].name, "jmt");
  EXPECT_EQ(layout.fields[0].offset, offsetof(GoodScalars, jmt));
  EXPECT_EQ(layout.fields[4].name, "header");
  EXPECT_EQ(layout.fields[4].count, 80u);
  EXPECT_EQ(layout.fields[4].type, cid::mpi::BasicType::Char);
  EXPECT_EQ(layout.fields[5].count, 3u);
  EXPECT_EQ(layout.fields[5].type, cid::mpi::BasicType::Double);
  EXPECT_TRUE(layout.validate().is_ok());
}

TEST(TypeLayout, PayloadSumsFieldBlocks) {
  const TypeLayout& layout = TypeLayoutOf<GoodScalars>::get();
  EXPECT_EQ(layout.payload_size(),
            2 * sizeof(int) + 2 * sizeof(double) + 80 + 3 * sizeof(double) +
                sizeof(int));
}

TEST(TypeLayout, ToDatatypeCommitsDerivedType) {
  auto datatype = TypeLayoutOf<GoodScalars>::get().to_datatype();
  ASSERT_TRUE(datatype.is_ok()) << datatype.status().to_string();
  EXPECT_TRUE(datatype.value().committed());
  EXPECT_EQ(datatype.value().extent(), sizeof(GoodScalars));
}

TEST(TypeLayout, PointerFieldRejected) {
  const auto status = TypeLayoutOf<HasPointer>::get().validate();
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), cid::ErrorCode::TypeError);
  EXPECT_NE(status.message().find("pointer"), std::string::npos);
}

TEST(TypeLayout, NestedCompositeRejected) {
  const auto status = TypeLayoutOf<HasNested>::get().validate();
  EXPECT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("nested"), std::string::npos);
}

// --- buffers ----------------------------------------------------------------

TEST(Buffer, ArrayCarriesExtent) {
  double data[12] = {};
  BufferRef b = buf(data, "data");
  EXPECT_TRUE(b.has_extent);
  EXPECT_EQ(b.extent_count, 12u);
  EXPECT_EQ(b.element_size, sizeof(double));
  EXPECT_EQ(b.name, "data");
  EXPECT_FALSE(b.is_composite());
}

TEST(Buffer, PointerHasNoExtent) {
  double data[4] = {};
  BufferRef b = buf(&data[0]);
  EXPECT_FALSE(b.has_extent);
}

TEST(Buffer, VectorAndMatrix) {
  std::vector<int> v(7);
  BufferRef bv = buf(v);
  EXPECT_EQ(bv.extent_count, 7u);

  cid::Matrix<double> m(3, 4);
  BufferRef bm = buf(m);
  EXPECT_EQ(bm.extent_count, 12u);
  EXPECT_EQ(bm.data, m.data());
}

TEST(Buffer, ReflectedStruct) {
  GoodScalars s{};
  BufferRef b = buf(s);
  EXPECT_TRUE(b.is_composite());
  EXPECT_EQ(b.extent_count, 1u);
  EXPECT_EQ(b.element_size, sizeof(GoodScalars));
  EXPECT_EQ(b.layout, &TypeLayoutOf<GoodScalars>::get());
}

// --- clause builder / merge / validation ------------------------------------

TEST(Clauses, RequiredClausesValidation) {
  double a[4] = {};
  double b[4] = {};
  Clauses complete;
  complete.sender("rank-1").receiver("rank+1").sbuf(buf(a)).rbuf(buf(b));
  EXPECT_TRUE(complete.validate_for_p2p().is_ok());

  Clauses no_sender;
  no_sender.receiver("rank+1").sbuf(buf(a)).rbuf(buf(b));
  EXPECT_FALSE(no_sender.validate_for_p2p().is_ok());

  Clauses no_buffers;
  no_buffers.sender("rank-1").receiver("rank+1");
  EXPECT_FALSE(no_buffers.validate_for_p2p().is_ok());
}

TEST(Clauses, SendwhenRequiresReceivewhen) {
  double a[4] = {};
  double b[4] = {};
  Clauses only_send;
  only_send.sender(0).receiver(1).sbuf(buf(a)).rbuf(buf(b)).sendwhen(
      "rank==0");
  const auto status = only_send.validate_for_p2p();
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), cid::ErrorCode::InvalidClause);

  only_send.receivewhen("rank==1");
  EXPECT_TRUE(only_send.validate_for_p2p().is_ok());
}

TEST(Clauses, BufferListLengthsMustMatch) {
  double a[4] = {};
  double b[4] = {};
  double c[4] = {};
  Clauses mismatched;
  mismatched.sender(0).receiver(1).sbuf({buf(a), buf(b)}).rbuf(buf(c));
  EXPECT_FALSE(mismatched.validate_for_p2p().is_ok());
}

TEST(Clauses, BufferPairTypesMustMatch) {
  double a[4] = {};
  int b[4] = {};
  Clauses mismatched;
  mismatched.sender(0).receiver(1).sbuf(buf(a)).rbuf(buf(b));
  EXPECT_FALSE(mismatched.validate_for_p2p().is_ok());
}

TEST(Clauses, ParamsOnlyClausesRejectedOnP2PSite) {
  Clauses with_sync;
  with_sync.place_sync(SyncPlacement::EndParamRegion);
  EXPECT_FALSE(with_sync.validate_p2p_site().is_ok());

  Clauses with_iter;
  with_iter.max_comm_iter(4);
  EXPECT_FALSE(with_iter.validate_p2p_site().is_ok());

  Clauses plain;
  plain.sender(0);
  EXPECT_TRUE(plain.validate_p2p_site().is_ok());
}

TEST(Clauses, MergeInheritsAbsentClauses) {
  double a[4] = {};
  double b[4] = {};
  Clauses region;
  region.sender("rank-1").receiver("rank+1").sendwhen("rank%2==0")
      .receivewhen("rank%2==1").count(3).target(Target::Shmem);
  Clauses site;
  site.sbuf(buf(a)).rbuf(buf(b));

  const Clauses merged = Clauses::merged(region, site);
  EXPECT_TRUE(merged.validate_for_p2p().is_ok());
  EXPECT_EQ(merged.sender_clause().describe(), "(rank-1)");
  EXPECT_EQ(merged.target_clause(), Target::Shmem);
  EXPECT_EQ(merged.sbuf_list().size(), 1u);
}

TEST(Clauses, MergeP2PClausesWin) {
  Clauses region;
  region.count(3).target(Target::Shmem);
  Clauses site;
  site.count(9).target(Target::Mpi2Side);
  const Clauses merged = Clauses::merged(region, site);
  EXPECT_EQ(merged.target_clause(), Target::Mpi2Side);
  Env env;
  EXPECT_EQ(merged.count_clause().eval(env).value(), 9);
}

TEST(Clauses, CallableClause) {
  int captured = 5;
  Clauses c;
  c.count([&]() -> ExprValue { return captured * 2; });
  Env env;
  EXPECT_EQ(c.count_clause().eval(env).value(), 10);
  captured = 6;
  EXPECT_EQ(c.count_clause().eval(env).value(), 12);
}

TEST(Clauses, StringClauseWithBinding) {
  Clauses c;
  c.count("size*2").let("size", 21);
  Env env;
  for (const auto& [name, value] : c.bindings()) env.bind(name, value);
  EXPECT_EQ(c.count_clause().eval(env).value(), 42);
}

TEST(Clauses, BrokenStringClauseReportsAtEval) {
  Clauses c;
  c.count("size +* 2");
  EXPECT_TRUE(c.count_clause().present());
  Env env;
  EXPECT_FALSE(c.count_clause().eval(env).is_ok());
}

TEST(Clauses, KeywordRoundTrip) {
  for (Target t : {Target::Mpi2Side, Target::Mpi1Side, Target::Shmem}) {
    auto parsed = parse_target_keyword(target_keyword(t));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), t);
  }
  for (SyncPlacement p :
       {SyncPlacement::EndParamRegion, SyncPlacement::BeginNextParamRegion,
        SyncPlacement::EndAdjParamRegions}) {
    auto parsed = parse_sync_placement_keyword(sync_placement_keyword(p));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), p);
  }
  EXPECT_FALSE(parse_target_keyword("TARGET_COMM_PVM").is_ok());
  EXPECT_FALSE(parse_sync_placement_keyword("WHENEVER").is_ok());
}

// --- pragma parsing ----------------------------------------------------------

TEST(Pragma, ParsesListing1) {
  auto parsed = parse_pragma(
      "#pragma comm_p2p sender(prev) receiver(next) sbuf(buf1) rbuf(buf2)");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().kind, DirectiveKind::CommP2P);
  ASSERT_EQ(parsed.value().clauses.size(), 4u);
  EXPECT_EQ(parsed.value().find("sender")->args[0], "prev");
  EXPECT_EQ(parsed.value().find("rbuf")->args[0], "buf2");
}

TEST(Pragma, ParsesListing2WithGuards) {
  auto parsed = parse_pragma(
      "#pragma comm_p2p sbuf(buf1) rbuf(buf2) sender(rank-1) receiver(rank+1) "
      "sendwhen(rank%2==0) receivewhen(rank%2==1)");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().find("sendwhen")->args[0], "rank%2==0");
}

TEST(Pragma, ParsesListing3CommParameters) {
  auto parsed = parse_pragma(
      "#pragma comm_parameters sender(rank-1) receiver(rank+1) "
      "sendwhen(rank%2==0) receivewhen(rank%2==1) count(size) "
      "max_comm_iter(n) place_sync(END_PARAM_REGION)");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().kind, DirectiveKind::CommParameters);
  EXPECT_EQ(parsed.value().find("place_sync")->args[0], "END_PARAM_REGION");
  EXPECT_EQ(parsed.value().find("max_comm_iter")->args[0], "n");
}

TEST(Pragma, ParsesBufferLists) {
  auto parsed = parse_pragma(
      "#pragma comm_p2p sbuf(ec,nc,lc,kc) rbuf(ec,nc,lc,kc) count(size2)");
  ASSERT_TRUE(parsed.is_ok());
  const auto* sbuf = parsed.value().find("sbuf");
  ASSERT_NE(sbuf, nullptr);
  EXPECT_EQ(sbuf->args,
            (std::vector<std::string>{"ec", "nc", "lc", "kc"}));
}

TEST(Pragma, ParsesAddressOfExpressions) {
  auto parsed = parse_pragma(
      "#pragma comm_p2p sbuf(&ev[3*send_p]) rbuf(&local.atom[p].evec[0])");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().find("sbuf")->args[0], "&ev[3*send_p]");
  EXPECT_EQ(parsed.value().find("rbuf")->args[0], "&local.atom[p].evec[0]");
}

TEST(Pragma, NestedParensInArgs) {
  auto parsed =
      parse_pragma("#pragma comm_p2p count(f(a,b)) sbuf(x) rbuf(y)");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().find("count")->args[0], "f(a,b)");
}

TEST(Pragma, BareFormWithoutHashPragma) {
  auto parsed = parse_pragma("comm_p2p sbuf(a) rbuf(b)");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().kind, DirectiveKind::CommP2P);
}

TEST(Pragma, Rejections) {
  EXPECT_FALSE(parse_pragma("#pragma omp parallel").is_ok());
  EXPECT_FALSE(parse_pragma("#pragma comm_p2p bogus(1)").is_ok());
  EXPECT_FALSE(parse_pragma("#pragma comm_p2p sender(a) sender(b)").is_ok());
  EXPECT_FALSE(parse_pragma("#pragma comm_p2p sender").is_ok());
  EXPECT_FALSE(parse_pragma("#pragma comm_p2p sender(a").is_ok());
  EXPECT_FALSE(parse_pragma("#pragma comm_p2p sender()").is_ok());
  EXPECT_FALSE(parse_pragma("#pragma comm_p2p sender(a,b)").is_ok());
  // comm_parameters-only clauses on a p2p:
  EXPECT_FALSE(
      parse_pragma("#pragma comm_p2p place_sync(END_PARAM_REGION)").is_ok());
  EXPECT_FALSE(parse_pragma("#pragma comm_p2p max_comm_iter(3)").is_ok());
  // unpaired guards:
  EXPECT_FALSE(parse_pragma("#pragma comm_p2p sendwhen(rank==0)").is_ok());
}

// The exact rejection messages are part of the tool surface: `cidt check`
// forwards them verbatim as CID-P001 diagnostics, so changing them breaks
// golden output downstream.
TEST(Pragma, RejectionMessagesArePinned) {
  auto message = [](std::string_view text) {
    auto parsed = parse_pragma(text);
    EXPECT_FALSE(parsed.is_ok()) << text;
    return parsed.status().message();
  };
  EXPECT_EQ(message("#pragma comm_p2p sender(a) sender(b)"),
            "duplicate clause 'sender'");
  EXPECT_EQ(message("#pragma comm_p2p bogus(1)"), "unknown clause 'bogus'");
  EXPECT_EQ(message("#pragma comm_p2p sbuf()"),
            "empty argument in clause 'sbuf'");
  EXPECT_EQ(message("#pragma comm_p2p sbuf(a, , b)"),
            "empty argument in clause 'sbuf'");
  EXPECT_EQ(message("#pragma comm_p2p sender"),
            "clause 'sender' expects '('");
  EXPECT_EQ(message("#pragma comm_p2p sender(a"),
            "unbalanced parentheses in clause 'sender'");
  EXPECT_EQ(message("#pragma comm_p2p sender(a,b)"),
            "clause 'sender' has 2 arguments, expected 1");
  EXPECT_EQ(message("#pragma comm_p2p place_sync(END_PARAM_REGION)"),
            "place_sync may only be used with comm_parameters");
  EXPECT_EQ(message("#pragma comm_p2p sendwhen(rank==0)"),
            "sendwhen and receivewhen must both be present or both be "
            "omitted");
  EXPECT_EQ(message("#pragma omp parallel"),
            "expected 'comm_parameters', 'comm_p2p' or 'comm_collective', "
            "got 'omp parallel'");
}

TEST(Pragma, ClauseOffsetsPointAtClauseNames) {
  const std::string_view text =
      "#pragma comm_p2p sender(rank-1) receiver(rank+1) sbuf(a) rbuf(b)";
  auto parsed = parse_pragma(text);
  ASSERT_TRUE(parsed.is_ok());
  for (const auto& clause : parsed.value().clauses) {
    ASSERT_LT(clause.offset, text.size());
    EXPECT_EQ(text.substr(clause.offset, clause.name.size()), clause.name);
  }
}

TEST(Pragma, ClausesFromParsedBindsBuffers) {
  double b1[8] = {};
  double b2[8] = {};
  BufferTable table;
  table.add("buf1", buf(b1));
  table.add("buf2", buf(b2));

  auto parsed = parse_pragma(
      "#pragma comm_p2p sender((rank-1+nprocs)%nprocs) "
      "receiver((rank+1)%nprocs) sbuf(buf1) rbuf(buf2)");
  ASSERT_TRUE(parsed.is_ok());
  auto clauses = clauses_from_parsed(parsed.value(), &table);
  ASSERT_TRUE(clauses.is_ok()) << clauses.status().to_string();
  EXPECT_TRUE(clauses.value().validate_for_p2p().is_ok());
  EXPECT_EQ(clauses.value().sbuf_list()[0].data, b1);
  EXPECT_EQ(clauses.value().rbuf_list()[0].name, "buf2");
}

TEST(Pragma, ClausesFromParsedUnboundBufferFails) {
  BufferTable table;
  auto parsed = parse_pragma("#pragma comm_p2p sbuf(mystery) rbuf(mystery)");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_FALSE(clauses_from_parsed(parsed.value(), &table).is_ok());
  EXPECT_FALSE(clauses_from_parsed(parsed.value(), nullptr).is_ok());
}

TEST(Pragma, ClausesFromParsedTargetAndPlacement) {
  auto parsed = parse_pragma(
      "#pragma comm_parameters target(TARGET_COMM_SHMEM) "
      "place_sync(BEGIN_NEXT_PARAM_REGION) max_comm_iter(8)");
  ASSERT_TRUE(parsed.is_ok());
  auto clauses = clauses_from_parsed(parsed.value(), nullptr);
  ASSERT_TRUE(clauses.is_ok());
  EXPECT_EQ(clauses.value().target_clause(), Target::Shmem);
  EXPECT_EQ(clauses.value().place_sync_clause(),
            SyncPlacement::BeginNextParamRegion);
}

}  // namespace
