// Tests for the comm_collective directive extension (the paper's Section V
// future work): patterns, group formation, both targets, validation, and
// translator support.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/strings.hpp"
#include "core/core.hpp"
#include "rt/runtime.hpp"
#include "shmem/shmem.hpp"
#include "translate/translator.hpp"

namespace {

using namespace cid::core;
using cid::rt::RankCtx;
using cid::simnet::MachineModel;

void spmd(int nranks, const cid::rt::RankFn& fn) {
  cid::rt::run(nranks, MachineModel::zero(), fn);
}

class CollectiveDirectiveTargets
    : public ::testing::TestWithParam<Target> {};

TEST_P(CollectiveDirectiveTargets, OneToManyBroadcasts) {
  const Target target = GetParam();
  spmd(6, [target](RankCtx& ctx) {
    double* rbuf_sym = cid::shmem::malloc_of<double>(4);
    std::fill(rbuf_sym, rbuf_sym + 4, -1.0);
    double sbuf_local[4] = {};
    if (ctx.rank() == 0) {
      for (int i = 0; i < 4; ++i) sbuf_local[i] = 5.0 + i;
    }
    ctx.barrier();
    comm_collective(Clauses()
                        .pattern(Pattern::OneToMany)
                        .root(0)
                        .count(4)
                        .target(target)
                        .sbuf(buf(sbuf_local))
                        .rbuf(buf_n(rbuf_sym, 4)));
    for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(rbuf_sym[i], 5.0 + i);
  });
}

TEST_P(CollectiveDirectiveTargets, ManyToOneGathers) {
  const Target target = GetParam();
  spmd(5, [target](RankCtx& ctx) {
    double* rbuf_sym = cid::shmem::malloc_of<double>(10);  // 5 ranks x 2
    std::fill(rbuf_sym, rbuf_sym + 10, -1.0);
    double sbuf_local[2] = {ctx.rank() * 2.0, ctx.rank() * 2.0 + 1};
    ctx.barrier();
    comm_collective(Clauses()
                        .pattern(Pattern::ManyToOne)
                        .root(0)
                        .count(2)
                        .target(target)
                        .sbuf(buf(sbuf_local))
                        .rbuf(buf_n(rbuf_sym, 10)));
    if (ctx.rank() == 0) {
      for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(rbuf_sym[i], i);
    }
  });
}

TEST_P(CollectiveDirectiveTargets, AllToAllTransposes) {
  const Target target = GetParam();
  spmd(4, [target](RankCtx& ctx) {
    int* rbuf_sym = cid::shmem::malloc_of<int>(4);
    std::fill(rbuf_sym, rbuf_sym + 4, -1);
    int sbuf_local[4];
    for (int j = 0; j < 4; ++j) sbuf_local[j] = ctx.rank() * 100 + j;
    ctx.barrier();
    comm_collective(Clauses()
                        .pattern(Pattern::AllToAll)
                        .count(1)
                        .target(target)
                        .sbuf(buf(sbuf_local))
                        .rbuf(buf_n(rbuf_sym, 4)));
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(rbuf_sym[j], j * 100 + ctx.rank()) << "target "
                                                   << static_cast<int>(target);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Targets, CollectiveDirectiveTargets,
                         ::testing::Values(Target::Mpi2Side, Target::Shmem));

TEST(CollectiveDirective, GroupClauseFormsGroups) {
  spmd(8, [](RankCtx& ctx) {
    // Two groups of four: ranks 0-3 and 4-7; each group broadcasts its own
    // root value.
    double* rbuf_sym = cid::shmem::malloc_of<double>(1);
    *rbuf_sym = -1.0;
    double sbuf_local[1] = {0.0};
    const int group_id = ctx.rank() / 4;
    if (ctx.rank() % 4 == 0) sbuf_local[0] = 100.0 + group_id;
    ctx.barrier();
    comm_collective(Clauses()
                        .pattern(Pattern::OneToMany)
                        .root(0)
                        .group("rank/4")
                        .count(1)
                        .sbuf(buf(sbuf_local))
                        .rbuf(buf_n(rbuf_sym, 1)));
    EXPECT_DOUBLE_EQ(*rbuf_sym, 100.0 + group_id);
  });
}

TEST(CollectiveDirective, NegativeGroupExcludes) {
  spmd(6, [](RankCtx& ctx) {
    double* rbuf_sym = cid::shmem::malloc_of<double>(1);
    *rbuf_sym = -1.0;
    double sbuf_local[1] = {ctx.rank() == 0 ? 42.0 : 0.0};
    ctx.barrier();
    // Odd ranks are excluded (group < 0).
    comm_collective(Clauses()
                        .pattern(Pattern::OneToMany)
                        .root(0)
                        .group("rank%2==0 ? 0 : 0-1")
                        .count(1)
                        .sbuf(buf(sbuf_local))
                        .rbuf(buf_n(rbuf_sym, 1)));
    if (ctx.rank() % 2 == 0) {
      EXPECT_DOUBLE_EQ(*rbuf_sym, 42.0);
    } else {
      EXPECT_DOUBLE_EQ(*rbuf_sym, -1.0);  // untouched on excluded ranks
    }
  });
}

TEST(CollectiveDirective, CountInferenceOneToMany) {
  spmd(3, [](RankCtx& ctx) {
    double sbuf_local[6] = {};
    double rbuf_local[6] = {};
    if (ctx.rank() == 1) std::iota(sbuf_local, sbuf_local + 6, 0.0);
    comm_collective(Clauses()
                        .pattern(Pattern::OneToMany)
                        .root(1)
                        .sbuf(buf(sbuf_local))
                        .rbuf(buf(rbuf_local)));  // count inferred: 6
    EXPECT_DOUBLE_EQ(rbuf_local[5], 5.0);
  });
}

TEST(CollectiveDirective, CountInferencePerMemberBlocks) {
  spmd(4, [](RankCtx& ctx) {
    // ManyToOne: rbuf holds one block per member; count inferred as
    // extent/size = 8/4 = 2.
    double sbuf_local[2] = {ctx.rank() + 0.25, ctx.rank() + 0.75};
    double rbuf_local[8] = {};
    comm_collective(Clauses()
                        .pattern(Pattern::ManyToOne)
                        .root(0)
                        .sbuf(buf(sbuf_local))
                        .rbuf(buf(rbuf_local)));
    if (ctx.rank() == 0) {
      EXPECT_DOUBLE_EQ(rbuf_local[6], 3.25);
      EXPECT_DOUBLE_EQ(rbuf_local[7], 3.75);
    }
  });
}

TEST(CollectiveDirective, RepeatedExecutionReusesGroup) {
  spmd(4, [](RankCtx& ctx) {
    double* rbuf_sym = cid::shmem::malloc_of<double>(1);
    double sbuf_local[1];
    ctx.barrier();
    for (int round = 0; round < 5; ++round) {
      sbuf_local[0] = ctx.rank() == 0 ? round * 3.0 : 0.0;
      comm_collective(Clauses()
                          .pattern(Pattern::OneToMany)
                          .root(0)
                          .count(1)
                          .target(Target::Shmem)
                          .sbuf(buf(sbuf_local))
                          .rbuf(buf_n(rbuf_sym, 1)));
      EXPECT_DOUBLE_EQ(*rbuf_sym, round * 3.0);
    }
  });
}

TEST(CollectiveDirective, InsideRegionInheritsTargetAndCount) {
  spmd(3, [](RankCtx& ctx) {
    double sbuf_local[3] = {};
    double rbuf_local[3] = {};
    if (ctx.rank() == 0) std::iota(sbuf_local, sbuf_local + 3, 7.0);
    // Note: comm_collective is standalone here; inheritance happens through
    // explicit clause reuse, not regions (collectives synchronize at the
    // directive). Verify the explicit form works alongside a region.
    comm_collective(Clauses()
                        .pattern(Pattern::OneToMany)
                        .root(0)
                        .count(3)
                        .sbuf(buf(sbuf_local))
                        .rbuf(buf(rbuf_local)));
    EXPECT_DOUBLE_EQ(rbuf_local[2], 9.0);
  });
}

// --- validation ---------------------------------------------------------

TEST(CollectiveDirective, ValidationErrors) {
  double a[4] = {};
  double b[4] = {};

  Clauses no_pattern;
  no_pattern.root(0).sbuf(buf(a)).rbuf(buf(b));
  EXPECT_FALSE(no_pattern.validate_for_collective().is_ok());

  Clauses no_root;
  no_root.pattern(Pattern::OneToMany).sbuf(buf(a)).rbuf(buf(b));
  EXPECT_FALSE(no_root.validate_for_collective().is_ok());

  Clauses alltoall_no_root_ok;
  alltoall_no_root_ok.pattern(Pattern::AllToAll).sbuf(buf(a)).rbuf(buf(b));
  EXPECT_TRUE(alltoall_no_root_ok.validate_for_collective().is_ok());

  Clauses with_guards;
  with_guards.pattern(Pattern::OneToMany)
      .root(0)
      .sendwhen("rank==0")
      .receivewhen("rank!=0")
      .sbuf(buf(a))
      .rbuf(buf(b));
  EXPECT_FALSE(with_guards.validate_for_collective().is_ok());

  Clauses with_sender;
  with_sender.pattern(Pattern::OneToMany).root(0).sender(0).sbuf(buf(a)).rbuf(
      buf(b));
  EXPECT_FALSE(with_sender.validate_for_collective().is_ok());

  double c[4] = {};
  Clauses two_sbufs;
  two_sbufs.pattern(Pattern::OneToMany).root(0).sbuf({buf(a), buf(c)}).rbuf(
      buf(b));
  EXPECT_FALSE(two_sbufs.validate_for_collective().is_ok());
}

TEST(CollectiveDirective, Mpi1SideRejected) {
  EXPECT_THROW(spmd(2,
                    [](RankCtx&) {
                      double a[2] = {};
                      double b[2] = {};
                      comm_collective(Clauses()
                                          .pattern(Pattern::OneToMany)
                                          .root(0)
                                          .target(Target::Mpi1Side)
                                          .sbuf(buf(a))
                                          .rbuf(buf(b)));
                    }),
               cid::CidError);
}

TEST(CollectiveDirective, ShmemRequiresSymmetricRbuf) {
  EXPECT_THROW(spmd(2,
                    [](RankCtx&) {
                      double a[2] = {};
                      double stack_rbuf[2] = {};
                      comm_collective(Clauses()
                                          .pattern(Pattern::OneToMany)
                                          .root(0)
                                          .count(2)
                                          .target(Target::Shmem)
                                          .sbuf(buf(a))
                                          .rbuf(buf(stack_rbuf)));
                    }),
               cid::CidError);
}

TEST(CollectiveDirective, OutOfRangeRootThrows) {
  EXPECT_THROW(spmd(2,
                    [](RankCtx&) {
                      double a[2] = {};
                      double b[2] = {};
                      comm_collective(Clauses()
                                          .pattern(Pattern::OneToMany)
                                          .root(9)
                                          .sbuf(buf(a))
                                          .rbuf(buf(b)));
                    }),
               cid::CidError);
}

// --- pragma / translator ---------------------------------------------------

TEST(CollectivePragma, ParsesAndValidates) {
  auto parsed = parse_pragma(
      "#pragma comm_collective pattern(PATTERN_ONE_TO_MANY) root(0) "
      "group(rank/4) sbuf(src) rbuf(dst) count(n)");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().kind, DirectiveKind::CommCollective);

  EXPECT_FALSE(parse_pragma("#pragma comm_collective sbuf(a) rbuf(b)")
                   .is_ok());  // no pattern
  EXPECT_FALSE(
      parse_pragma("#pragma comm_collective pattern(PATTERN_ALL_TO_ALL) "
                   "sender(0) sbuf(a) rbuf(b)")
          .is_ok());  // sender not allowed
  EXPECT_FALSE(parse_pragma("#pragma comm_p2p pattern(PATTERN_ALL_TO_ALL) "
                            "sbuf(a) rbuf(b)")
                   .is_ok());  // pattern only on comm_collective
}

TEST(CollectivePragma, ClausesFromParsed) {
  BufferTable table;
  double x[8] = {};
  double y[8] = {};
  table.add("src", buf(x));
  table.add("dst", buf(y));
  auto parsed = parse_pragma(
      "#pragma comm_collective pattern(PATTERN_MANY_TO_ONE) root(2) "
      "sbuf(src) rbuf(dst) count(2)");
  ASSERT_TRUE(parsed.is_ok());
  auto clauses = clauses_from_parsed(parsed.value(), &table);
  ASSERT_TRUE(clauses.is_ok()) << clauses.status().to_string();
  EXPECT_EQ(clauses.value().pattern_clause(), Pattern::ManyToOne);
  EXPECT_TRUE(clauses.value().validate_for_collective().is_ok());
}

TEST(CollectiveTranslate, GeneratesBcast) {
  auto result = cid::translate::translate_source(R"(
#pragma comm_collective pattern(PATTERN_ONE_TO_MANY) root(0) sbuf(src) rbuf(dst) count(16)
{ }
)");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(cid::contains(result.value().source, "cid::mpi::bcast"));
  EXPECT_TRUE(cid::contains(result.value().source, "copy_block"));
}

TEST(CollectiveTranslate, GeneratesGatherWithGroup) {
  auto result = cid::translate::translate_source(R"(
#pragma comm_collective pattern(PATTERN_MANY_TO_ONE) root(0) group(rank/2) sbuf(src) rbuf(dst) count(4)
{ }
)");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_TRUE(cid::contains(result.value().source, "cid::mpi::gather"));
  EXPECT_TRUE(cid::contains(result.value().source, ".split("));
}

TEST(CollectiveTranslate, GeneratesAlltoall) {
  auto result = cid::translate::translate_source(R"(
#pragma comm_collective pattern(PATTERN_ALL_TO_ALL) sbuf(src) rbuf(dst) count(4)
{ }
)");
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(cid::contains(result.value().source, "cid::mpi::alltoall"));
}

TEST(CollectiveTranslate, RequiresExplicitCount) {
  auto result = cid::translate::translate_source(R"(
#pragma comm_collective pattern(PATTERN_ALL_TO_ALL) sbuf(src) rbuf(dst)
{ }
)");
  EXPECT_FALSE(result.is_ok());
}

TEST(CollectiveTranslate, RejectsShmemTarget) {
  auto result = cid::translate::translate_source(R"(
#pragma comm_collective pattern(PATTERN_ALL_TO_ALL) sbuf(src) rbuf(dst) count(4) target(TARGET_COMM_SHMEM)
{ }
)");
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), cid::ErrorCode::UnsupportedTarget);
}

}  // namespace
