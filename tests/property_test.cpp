// Property-style tests: invariants checked over seeded random inputs and
// parameter sweeps rather than hand-picked cases — expression algebraic
// identities and print/parse round trips; datatype gather/scatter as the
// identity on random struct layouts; virtual-clock monotonicity and barrier
// max-reduction over rank sweeps; random guarded ring/pair transfers
// delivering exactly the data the guards select, on every target.
//
// NOTE: the HotPathGolden fingerprints hash directive site strings
// ("file:line" of this file), so edits above run_faulty_exchange must keep
// its line numbers stable: compensate for added/removed lines, or append below.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <numeric>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "core/core.hpp"
#include "core/trace.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "mpi/mpi.hpp"
#include "obs/obs.hpp"
#include "rt/runtime.hpp"
#include "shmem/shmem.hpp"

namespace {

using namespace cid::core;
using cid::Rng;
using cid::rt::RankCtx;
using cid::simnet::MachineModel;

void spmd(int nranks, const cid::rt::RankFn& fn) {
  cid::rt::run(nranks, MachineModel::zero(), fn);
}

// ---------------------------------------------------------------------------
// Expression properties
// ---------------------------------------------------------------------------

/// Random expression generator: returns (text, reference value).
class ExprGen {
 public:
  explicit ExprGen(std::uint64_t seed) : rng_(seed) {}

  struct Sample {
    std::string text;
    ExprValue value;
  };

  Sample generate(int depth) {
    if (depth <= 0 || rng_.next_below(4) == 0) {
      // Leaf: literal or bound variable.
      if (rng_.next_below(2) == 0) {
        const ExprValue v = static_cast<ExprValue>(rng_.next_below(100));
        return {std::to_string(v), v};
      }
      const int which = static_cast<int>(rng_.next_below(3));
      static const char* names[] = {"rank", "nprocs", "n"};
      static const ExprValue values[] = {5, 16, 7};
      return {names[which], values[which]};
    }
    const Sample lhs = generate(depth - 1);
    const Sample rhs = generate(depth - 1);
    switch (rng_.next_below(8)) {
      case 0:
        return {"(" + lhs.text + "+" + rhs.text + ")", lhs.value + rhs.value};
      case 1:
        return {"(" + lhs.text + "-" + rhs.text + ")", lhs.value - rhs.value};
      case 2:
        return {"(" + lhs.text + "*" + rhs.text + ")", lhs.value * rhs.value};
      case 3:
        if (rhs.value != 0) {
          return {"(" + lhs.text + "/" + rhs.text + ")",
                  lhs.value / rhs.value};
        }
        return {"(" + lhs.text + "+" + rhs.text + ")", lhs.value + rhs.value};
      case 4:
        if (rhs.value != 0) {
          return {"(" + lhs.text + "%" + rhs.text + ")",
                  lhs.value % rhs.value};
        }
        return {"(" + lhs.text + "-" + rhs.text + ")", lhs.value - rhs.value};
      case 5:
        return {"(" + lhs.text + "==" + rhs.text + ")",
                lhs.value == rhs.value ? 1 : 0};
      case 6:
        return {"(" + lhs.text + "<" + rhs.text + ")",
                lhs.value < rhs.value ? 1 : 0};
      default:
        return {"(" + lhs.text + "?" + rhs.text + ":" +
                    std::to_string(depth) + ")",
                lhs.value != 0 ? rhs.value : depth};
    }
  }

 private:
  Rng rng_;
};

class ExprProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExprProperty, RandomTreesEvaluateToReference) {
  Env env;
  env.bind("rank", 5);
  env.bind("nprocs", 16);
  env.bind("n", 7);
  ExprGen gen(GetParam());
  for (int i = 0; i < 50; ++i) {
    const auto sample = gen.generate(4);
    auto expr = Expr::parse(sample.text);
    ASSERT_TRUE(expr.is_ok()) << sample.text;
    auto value = expr.value().eval(env);
    ASSERT_TRUE(value.is_ok()) << sample.text;
    EXPECT_EQ(value.value(), sample.value) << sample.text;
  }
}

TEST_P(ExprProperty, PrintParsePrintIsStable) {
  // Deliberately a DIFFERENT environment from the generator's reference, so
  // some expressions hit division/modulo by zero — the round-tripped form
  // must then fail identically.
  Env env;
  env.bind("rank", 3);
  env.bind("nprocs", 8);
  env.bind("n", 2);
  ExprGen gen(GetParam() ^ 0x777);
  for (int i = 0; i < 50; ++i) {
    const auto sample = gen.generate(3);
    auto first = Expr::parse(sample.text);
    ASSERT_TRUE(first.is_ok());
    const std::string printed = first.value().to_string();
    auto second = Expr::parse(printed);
    ASSERT_TRUE(second.is_ok()) << printed;
    EXPECT_EQ(second.value().to_string(), printed);
    // Evaluation agrees between original and round-tripped form — including
    // the failure case.
    const auto original = first.value().eval(env);
    const auto round_tripped = second.value().eval(env);
    ASSERT_EQ(original.is_ok(), round_tripped.is_ok()) << sample.text;
    if (original.is_ok()) {
      EXPECT_EQ(original.value(), round_tripped.value()) << sample.text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Datatype properties
// ---------------------------------------------------------------------------

class DatatypeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DatatypeProperty, GatherScatterIsIdentityOnRandomLayouts) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    // Build a random non-overlapping layout inside a 256-byte extent.
    constexpr std::size_t kExtent = 256;
    std::vector<cid::mpi::TypeField> fields;
    std::size_t offset = 0;
    while (offset + 16 < kExtent && fields.size() < 12) {
      offset += rng.next_below(9);  // random hole
      // Alignment-safe block of doubles, ints or chars.
      const int kind = static_cast<int>(rng.next_below(3));
      cid::mpi::TypeField field;
      if (kind == 0) {
        offset = (offset + 7) & ~std::size_t{7};
        field = {offset, 1 + rng.next_below(3),
                 cid::mpi::BasicType::Double};
        offset += field.block_length * 8;
      } else if (kind == 1) {
        offset = (offset + 3) & ~std::size_t{3};
        field = {offset, 1 + rng.next_below(4), cid::mpi::BasicType::Int};
        offset += field.block_length * 4;
      } else {
        field = {offset, 1 + rng.next_below(8), cid::mpi::BasicType::Char};
        offset += field.block_length;
      }
      if (offset > kExtent) break;
      fields.push_back(field);
    }
    if (fields.empty()) continue;

    auto result = cid::mpi::Datatype::create_struct(fields, kExtent);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    auto dtype = std::move(result).take();
    dtype.commit();

    // Random element contents; remember them.
    const std::size_t count = 1 + rng.next_below(4);
    std::vector<std::byte> original(kExtent * count);
    for (auto& byte : original) {
      byte = static_cast<std::byte>(rng.next_below(256));
    }
    std::vector<std::byte> working = original;

    auto wire = dtype.gather(working.data(), count);
    EXPECT_EQ(wire.size(), dtype.payload_size() * count);

    // Corrupt the working copy, then scatter back: payload fields must be
    // restored; bytes outside fields keep the corrupted values.
    std::vector<std::byte> corrupted(working.size(),
                                     static_cast<std::byte>(0xAA));
    ASSERT_TRUE(dtype
                    .scatter(cid::ByteSpan(wire.data(), wire.size()),
                             corrupted.data(), count)
                    .is_ok());
    for (std::size_t e = 0; e < count; ++e) {
      for (const auto& field : fields) {
        const std::size_t bytes =
            field.block_length * cid::mpi::basic_type_size(field.type);
        for (std::size_t b = 0; b < bytes; ++b) {
          const std::size_t pos = e * kExtent + field.displacement + b;
          EXPECT_EQ(corrupted[pos], original[pos])
              << "trial " << trial << " field at " << field.displacement;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatatypeProperty,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Runtime properties
// ---------------------------------------------------------------------------

class BarrierProperty : public ::testing::TestWithParam<int> {};

TEST_P(BarrierProperty, BarrierEqualizesToMaximum) {
  const int nranks = GetParam();
  MachineModel model = MachineModel::zero();
  model.barrier_base = 1e-6;
  cid::rt::run(nranks, model, [nranks](RankCtx& ctx) {
    Rng rng(0xbeef ^ static_cast<std::uint64_t>(ctx.rank()));
    double expected_max = 0.0;
    for (int r = 0; r < nranks; ++r) {
      Rng peer(0xbeef ^ static_cast<std::uint64_t>(r));
      expected_max =
          std::max(expected_max, 1e-6 * static_cast<double>(
                                             peer.next_below(1000)));
    }
    ctx.charge_compute(1e-6 * static_cast<double>(rng.next_below(1000)));
    ctx.barrier();
    EXPECT_DOUBLE_EQ(ctx.clock().now(), expected_max + 1e-6);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, BarrierProperty,
                         ::testing::Values(2, 3, 8, 17, 33));

TEST(RuntimeProperty, VirtualTimeIsDeterministicAcrossRuns) {
  auto run_once = [] {
    auto result = cid::rt::run(
        9, MachineModel::cray_xk7_gemini(), [](RankCtx& ctx) {
          namespace mpi = cid::mpi;
          auto world = mpi::Comm::world();
          double token[4] = {1, 2, 3, 4};
          const int next = (ctx.rank() + 1) % ctx.nranks();
          const int prev = (ctx.rank() - 1 + ctx.nranks()) % ctx.nranks();
          for (int lap = 0; lap < 3; ++lap) {
            auto recv_req = mpi::irecv(world, token, 4, prev, lap);
            auto send_req = mpi::isend(world, token, 4, next, lap);
            mpi::wait(recv_req);
            mpi::wait(send_req);
            ctx.barrier();
          }
        });
    return result.final_clocks;
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i], second[i]) << "rank " << i;
  }
}

// ---------------------------------------------------------------------------
// Directive properties
// ---------------------------------------------------------------------------

struct DirectiveSweepParam {
  int nranks;
  Target target;
};

class DirectiveSweep
    : public ::testing::TestWithParam<DirectiveSweepParam> {};

TEST_P(DirectiveSweep, RandomGuardedTransfersDeliverExactly) {
  const auto param = GetParam();
  spmd(param.nranks, [param](RankCtx& ctx) {
    namespace shmem = cid::shmem;
    constexpr int kRounds = 6;
    constexpr int kElems = 3;
    double* rbuf_sym = shmem::malloc_of<double>(kElems);
    double sbuf_local[kElems];
    ctx.barrier();

    // Deterministic random schedule shared by all ranks: per round, a
    // random sender/receiver pair and a guard.
    Rng schedule(0x5c4edu);
    for (int round = 0; round < kRounds; ++round) {
      const int from =
          static_cast<int>(schedule.next_below(
              static_cast<std::uint64_t>(param.nranks)));
      int to = static_cast<int>(schedule.next_below(
          static_cast<std::uint64_t>(param.nranks)));
      if (to == from) to = (to + 1) % param.nranks;

      for (int i = 0; i < kElems; ++i) {
        sbuf_local[i] = ctx.rank() * 100.0 + round * 10.0 + i;
        rbuf_sym[i] = -1.0;
      }
      // Reinitialization of rbuf races with nothing: transfers complete at
      // the directive, and the schedule is globally synchronized below.
      ctx.barrier();

      comm_p2p(Clauses()
                   .sender(from)
                   .receiver(to)
                   .sendwhen([&]() -> ExprValue { return ctx.rank() == from; })
                   .receivewhen([&]() -> ExprValue { return ctx.rank() == to; })
                   .count(kElems)
                   .target(param.target)
                   .sbuf(buf(sbuf_local))
                   .rbuf(buf_n(rbuf_sym, kElems)));

      if (ctx.rank() == to) {
        for (int i = 0; i < kElems; ++i) {
          EXPECT_DOUBLE_EQ(rbuf_sym[i], from * 100.0 + round * 10.0 + i)
              << "round " << round;
        }
      } else {
        for (int i = 0; i < kElems; ++i) {
          EXPECT_DOUBLE_EQ(rbuf_sym[i], -1.0) << "round " << round;
        }
      }
      ctx.barrier();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DirectiveSweep,
    ::testing::Values(DirectiveSweepParam{2, Target::Mpi2Side},
                      DirectiveSweepParam{5, Target::Mpi2Side},
                      DirectiveSweepParam{8, Target::Mpi2Side},
                      DirectiveSweepParam{2, Target::Shmem},
                      DirectiveSweepParam{5, Target::Shmem},
                      DirectiveSweepParam{8, Target::Shmem}));

class RingSweep : public ::testing::TestWithParam<int> {};

TEST_P(RingSweep, RingHoldsForAllSizesAndCounts) {
  const int nranks = GetParam();
  spmd(nranks, [nranks](RankCtx& ctx) {
    for (const std::size_t count : {1u, 2u, 7u, 64u}) {
      std::vector<double> out(count);
      std::vector<double> in(count, -1.0);
      for (std::size_t i = 0; i < count; ++i) {
        out[i] = ctx.rank() * 1000.0 + static_cast<double>(i);
      }
      comm_p2p(Clauses()
                   .sender("(rank-1+nprocs)%nprocs")
                   .receiver("(rank+1)%nprocs")
                   .count(static_cast<ExprValue>(count))
                   .sbuf(buf(out))
                   .rbuf(buf(in)));
      const int prev = (ctx.rank() - 1 + nranks) % nranks;
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_DOUBLE_EQ(in[i], prev * 1000.0 + static_cast<double>(i));
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 9, 16, 25));

// ---------------------------------------------------------------------------
// Fault-injection determinism: the whole point of the cid::faults design is
// that a seeded FaultPlan makes a faulty run a reproducible artifact. Same
// seed => byte-identical trace JSON and identical per-rank comm_stats, no
// matter how the OS schedules the rank threads.
// ---------------------------------------------------------------------------

struct FaultTraceRun {
  std::string trace_json;
  std::map<int, CommStats> stats;
  cid::faults::FaultStats fault_stats;
};

/// A reliable ring exchange under a mixed fault plan, traced.
FaultTraceRun run_faulty_exchange(std::uint64_t seed) {
  cid::faults::FaultSpec spec;
  spec.drop_rate = 0.08;
  spec.duplicate_rate = 0.05;
  spec.delay_rate = 0.1;
  const cid::faults::FaultPlan plan(seed, spec);

  TraceCollector trace;
  FaultTraceRun out;
  std::mutex mu;
  auto run = cid::faults::run_with_faults(
      4, MachineModel::cray_xk7_gemini(), plan, [&](RankCtx& ctx) {
        trace.attach(ctx);
        for (int round = 0; round < 4; ++round) {
          double sbuf_ring[4], rbuf_ring[4] = {};
          for (int i = 0; i < 4; ++i) {
            sbuf_ring[i] = ctx.rank() * 10.0 + round + i * 0.25;
          }
          comm_parameters(
              Clauses()
                  .sender("(rank-1+nprocs)%nprocs")
                  .receiver("(rank+1)%nprocs")
                  .count(4)
                  .reliability(100, 8),
              [&](Region& region) {
                region.p2p(
                    Clauses().sbuf(buf(sbuf_ring)).rbuf(buf(rbuf_ring)));
              });
          const int prev = (ctx.rank() + 3) % 4;
          for (int i = 0; i < 4; ++i) {
            EXPECT_DOUBLE_EQ(rbuf_ring[i], prev * 10.0 + round + i * 0.25);
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        out.stats[ctx.rank()] = comm_stats();
      });
  out.fault_stats = run.stats;
  std::ostringstream json;
  trace.write_chrome_json(json);
  out.trace_json = json.str();
  return out;
}

TEST(FaultDeterminism, SameSeedByteIdenticalTraceAndStats) {
  const FaultTraceRun a = run_faulty_exchange(0x5eedULL);
  const FaultTraceRun b = run_faulty_exchange(0x5eedULL);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.fault_stats, b.fault_stats);
  // The plan did interfere (the runs are not trivially fault-free)...
  EXPECT_GT(a.fault_stats.faults(), 0u);
  // ...and the protocol recovered: retransmissions happened somewhere.
  std::uint64_t retransmits = 0;
  for (const auto& [rank, s] : a.stats) retransmits += s.retransmits;
  EXPECT_GT(retransmits, 0u);
}

TEST(FaultDeterminism, DifferentSeedsProduceDifferentFaultPatterns) {
  const FaultTraceRun a = run_faulty_exchange(1);
  const FaultTraceRun b = run_faulty_exchange(2);
  EXPECT_TRUE(a.trace_json != b.trace_json ||
              !(a.fault_stats == b.fault_stats));
}

// ---------------------------------------------------------------------------
// Hot-path refactor pinning. These fingerprints were captured on the
// pre-overhaul runtime (linear-scan mailbox, deep-copied payloads,
// field-by-field datatype walks, commit e787382). The indexed mailbox /
// shared-payload / pack-plan implementations are pure wall-clock
// optimizations: virtual time, traces and stats must stay byte-identical,
// so these constants must never need regeneration. (To inspect current
// values when a legitimate semantic change lands, run with
// CID_PRINT_GOLDEN=1, which prints instead of asserting.)
// ---------------------------------------------------------------------------

// Captured with CID_PRINT_GOLDEN=1 on the pre-overhaul tree.
constexpr std::uint64_t kGoldenFaultyTraceHash = 0xb2330206a61de8eaULL;
constexpr std::uint64_t kGoldenFaultyStatsHash = 0xfdedf4d0466a7a28ULL;
constexpr std::uint64_t kGoldenCleanClocksHash = 0x8a76a8c1800d04aaULL;
constexpr double kGoldenCleanMakespan = 4.8169200000000006e-05;

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Every counter of every rank in a fixed order, as text.
std::string stats_fingerprint(const std::map<int, CommStats>& stats) {
  std::ostringstream out;
  for (const auto& [rank, s] : stats) {
    out << rank << ':' << s.p2p_directives << ',' << s.regions << ','
        << s.collective_directives << ',' << s.mpi2_messages << ','
        << s.mpi2_bytes << ',' << s.mpi1_puts << ',' << s.mpi1_bytes << ','
        << s.shmem_puts << ',' << s.shmem_bytes << ',' << s.waitalls << ','
        << s.requests_retired << ',' << s.shmem_quiets << ','
        << s.window_fences << ',' << s.conflict_flushes << ','
        << s.deferred_syncs << ',' << s.datatypes_created << ','
        << s.datatype_cache_hits << ',' << s.reliable_transfers << ','
        << s.retransmits << ',' << s.timeouts << ','
        << s.duplicates_suppressed << ',' << s.undelivered_pairs << ';';
  }
  return out.str();
}

TEST(HotPathGolden, FaultyRunTraceAndStatsMatchPrePrFingerprint) {
  const FaultTraceRun run = run_faulty_exchange(0x5eedULL);
  const std::uint64_t trace_hash = fnv1a64(run.trace_json);
  const std::uint64_t stats_hash = fnv1a64(stats_fingerprint(run.stats));
  if (std::getenv("CID_PRINT_GOLDEN") != nullptr) {
    std::printf("faulty trace_hash  = 0x%016llxULL\n",
                static_cast<unsigned long long>(trace_hash));
    std::printf("faulty stats_hash  = 0x%016llxULL\n",
                static_cast<unsigned long long>(stats_hash));
    std::printf("faulty drops=%llu dups=%llu delays=%llu stalls=%llu\n",
                static_cast<unsigned long long>(run.fault_stats.drops),
                static_cast<unsigned long long>(run.fault_stats.duplicates),
                static_cast<unsigned long long>(run.fault_stats.delays),
                static_cast<unsigned long long>(run.fault_stats.stalls));
    GTEST_SKIP() << "golden print mode";
  }
  EXPECT_EQ(trace_hash, kGoldenFaultyTraceHash);
  EXPECT_EQ(stats_hash, kGoldenFaultyStatsHash);
}

TEST(HotPathGolden, CleanRingClocksMatchPrePrFingerprint) {
  auto result = cid::rt::run(
      9, MachineModel::cray_xk7_gemini(), [](RankCtx& ctx) {
        namespace mpi = cid::mpi;
        auto world = mpi::Comm::world();
        double token[4] = {1, 2, 3, 4};
        const int next = (ctx.rank() + 1) % ctx.nranks();
        const int prev = (ctx.rank() - 1 + ctx.nranks()) % ctx.nranks();
        for (int lap = 0; lap < 3; ++lap) {
          auto recv_req = mpi::irecv(world, token, 4, prev, lap);
          auto send_req = mpi::isend(world, token, 4, next, lap);
          mpi::wait(recv_req);
          mpi::wait(send_req);
          ctx.barrier();
        }
      });
  // Hash the exact bit patterns of every final clock.
  std::string bits(result.final_clocks.size() * sizeof(double), '\0');
  std::memcpy(bits.data(), result.final_clocks.data(), bits.size());
  const std::uint64_t clocks_hash = fnv1a64(bits);
  if (std::getenv("CID_PRINT_GOLDEN") != nullptr) {
    std::printf("clean clocks_hash  = 0x%016llxULL\n",
                static_cast<unsigned long long>(clocks_hash));
    std::printf("clean makespan     = %.17g\n", result.makespan());
    GTEST_SKIP() << "golden print mode";
  }
  EXPECT_EQ(clocks_hash, kGoldenCleanClocksHash);
  EXPECT_DOUBLE_EQ(result.makespan(), kGoldenCleanMakespan);
}

// ---------------------------------------------------------------------------
// Observability must be a pure observer: with cid::obs recording enabled
// (the CID_TRACE_OUT path), virtual time, the directive trace and the stats
// counters must match the same golden fingerprints bit for bit. Recording
// never touches a rank clock, so any divergence here means a probe leaked
// into the simulation.
// ---------------------------------------------------------------------------

/// Enable obs recording for one scope; restore the disabled default even on
/// assertion failure.
struct ObsRecordingScope {
  ObsRecordingScope() {
    cid::obs::clear();
    cid::obs::set_enabled(true);
  }
  ~ObsRecordingScope() {
    cid::obs::set_enabled(false);
    cid::obs::clear();
  }
};

TEST(ObsExport, DoesNotPerturbFaultyRunGoldenFingerprints) {
  ObsRecordingScope recording;
  const FaultTraceRun run = run_faulty_exchange(0x5eedULL);
  if (std::getenv("CID_PRINT_GOLDEN") != nullptr) {
    GTEST_SKIP() << "golden print mode";
  }
  EXPECT_EQ(fnv1a64(run.trace_json), kGoldenFaultyTraceHash);
  EXPECT_EQ(fnv1a64(stats_fingerprint(run.stats)), kGoldenFaultyStatsHash);
  // ...and the recorder did actually observe the run.
  EXPECT_FALSE(cid::obs::spans().empty());
}

TEST(ObsExport, DoesNotPerturbCleanRingClocks) {
  auto clocks_hash_of = [] {
    auto result = cid::rt::run(
        9, MachineModel::cray_xk7_gemini(), [](RankCtx& ctx) {
          namespace mpi = cid::mpi;
          auto world = mpi::Comm::world();
          double token[4] = {1, 2, 3, 4};
          const int next = (ctx.rank() + 1) % ctx.nranks();
          const int prev = (ctx.rank() - 1 + ctx.nranks()) % ctx.nranks();
          for (int lap = 0; lap < 3; ++lap) {
            auto recv_req = mpi::irecv(world, token, 4, prev, lap);
            auto send_req = mpi::isend(world, token, 4, next, lap);
            mpi::wait(recv_req);
            mpi::wait(send_req);
            ctx.barrier();
          }
        });
    std::string bits(result.final_clocks.size() * sizeof(double), '\0');
    std::memcpy(bits.data(), result.final_clocks.data(), bits.size());
    return fnv1a64(bits);
  };
  std::uint64_t with_obs = 0;
  {
    ObsRecordingScope recording;
    with_obs = clocks_hash_of();
  }
  if (std::getenv("CID_PRINT_GOLDEN") != nullptr) {
    GTEST_SKIP() << "golden print mode";
  }
  EXPECT_EQ(with_obs, kGoldenCleanClocksHash);
}

}  // namespace
