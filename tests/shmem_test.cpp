// Tests for miniSHMEM: symmetric heap discipline, puts/gets, completion
// (quiet / barrier_all / wait_until), and virtual-time behaviour.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <numeric>
#include <vector>

#include "rt/runtime.hpp"
#include "shmem/shmem.hpp"

namespace {

using cid::rt::RankCtx;
using cid::simnet::MachineModel;
namespace shmem = cid::shmem;

void spmd(int nranks, const cid::rt::RankFn& fn) {
  cid::rt::run(nranks, MachineModel::zero(), fn);
}

TEST(ShmemHeap, SymmetricAllocationSameOffsets) {
  spmd(4, [](RankCtx& ctx) {
    auto& heap = shmem::SymmetricHeap::of_world(ctx);
    double* a = shmem::malloc_of<double>(10);
    double* b = shmem::malloc_of<double>(5);
    EXPECT_TRUE(shmem::is_symmetric(a));
    EXPECT_TRUE(shmem::is_symmetric(b));
    EXPECT_GT(b, a);
    // Every PE allocated the same amount.
    ctx.barrier();
    EXPECT_EQ(heap.allocated(0), heap.allocated(ctx.rank()));
  });
}

TEST(ShmemHeap, AsymmetricAllocationDetected) {
  EXPECT_THROW(spmd(2,
                    [](RankCtx& ctx) {
                      // PE 0 allocates 8 bytes, PE 1 allocates 16 — the heap
                      // must reject the divergence.
                      ctx.barrier();
                      shmem::malloc_sym(ctx.rank() == 0 ? 8 : 16);
                      ctx.barrier();
                    }),
               cid::CidError);
}

TEST(ShmemHeap, NonSymmetricAddressRejectedByPut) {
  EXPECT_THROW(spmd(2,
                    [](RankCtx& ctx) {
                      double local = 0.0;
                      double value = 1.0;
                      if (ctx.rank() == 0) {
                        shmem::put(&local, &value, 1, 1);
                      }
                    }),
               cid::CidError);
}

TEST(ShmemHeap, StackVariableIsNotSymmetric) {
  spmd(1, [](RankCtx&) {
    int local = 0;
    EXPECT_FALSE(shmem::is_symmetric(&local));
  });
}

TEST(ShmemPut, PutThenBarrierDelivers) {
  spmd(2, [](RankCtx& ctx) {
    double* dest = shmem::malloc_of<double>(4);
    std::fill(dest, dest + 4, 0.0);
    ctx.barrier();
    if (ctx.rank() == 0) {
      std::array<double, 4> src{1.5, 2.5, 3.5, 4.5};
      shmem::put(dest, src.data(), 4, 1);
    }
    shmem::barrier_all();
    if (ctx.rank() == 1) {
      EXPECT_DOUBLE_EQ(dest[0], 1.5);
      EXPECT_DOUBLE_EQ(dest[3], 4.5);
    } else {
      EXPECT_DOUBLE_EQ(dest[0], 0.0);
    }
  });
}

TEST(ShmemPut, SizeNamedVariantsMoveRightBytes) {
  spmd(2, [](RankCtx& ctx) {
    auto* dest = static_cast<std::uint8_t*>(shmem::malloc_sym(64));
    std::fill(dest, dest + 64, std::uint8_t{0});
    ctx.barrier();
    if (ctx.rank() == 0) {
      std::array<std::uint8_t, 2> b8{1, 2};
      std::array<std::uint16_t, 2> b16{3, 4};
      std::array<std::uint32_t, 2> b32{5, 6};
      std::array<std::uint64_t, 2> b64{7, 8};
      shmem::put8(dest, b8.data(), 2, 1);
      shmem::put16(dest + 8, b16.data(), 2, 1);
      shmem::put32(dest + 16, b32.data(), 2, 1);
      shmem::put64(dest + 24, b64.data(), 2, 1);
    }
    shmem::barrier_all();
    if (ctx.rank() == 1) {
      EXPECT_EQ(dest[1], 2);
      std::uint16_t h = 0;
      std::memcpy(&h, dest + 10, 2);
      EXPECT_EQ(h, 4);
      std::uint32_t w = 0;
      std::memcpy(&w, dest + 20, 4);
      EXPECT_EQ(w, 6);
      std::uint64_t q = 0;
      std::memcpy(&q, dest + 32, 8);
      EXPECT_EQ(q, 8);
    }
  });
}

TEST(ShmemGet, BlockingGetReadsRemote) {
  spmd(2, [](RankCtx& ctx) {
    int* data = shmem::malloc_of<int>(8);
    for (int i = 0; i < 8; ++i) data[i] = ctx.rank() * 100 + i;
    shmem::barrier_all();
    if (ctx.rank() == 0) {
      std::array<int, 8> local{};
      shmem::getmem(local.data(), data, 8 * sizeof(int), 1);
      EXPECT_EQ(local[0], 100);
      EXPECT_EQ(local[7], 107);
    }
    shmem::barrier_all();
  });
}

TEST(ShmemSync, WaitUntilObservesFlag) {
  spmd(2, [](RankCtx& ctx) {
    auto* flag = shmem::malloc_of<std::uint64_t>(1);
    double* data = shmem::malloc_of<double>(3);
    *flag = 0;
    std::fill(data, data + 3, 0.0);
    ctx.barrier();
    if (ctx.rank() == 0) {
      std::array<double, 3> spin{0.1, 0.2, 0.3};
      shmem::put(data, spin.data(), 3, 1);
      shmem::fence();
      shmem::put_value64(flag, 1, 1);
      shmem::quiet();
    } else {
      shmem::wait_until(flag, shmem::Cmp::Ge, 1);
      EXPECT_DOUBLE_EQ(data[0], 0.1);
      EXPECT_DOUBLE_EQ(data[2], 0.3);
    }
  });
}

TEST(ShmemSync, WaitUntilComparisons) {
  spmd(1, [](RankCtx&) {
    auto* flag = shmem::malloc_of<std::uint64_t>(1);
    *flag = 5;
    shmem::put_value64(flag, 7, 0);  // self-put
    shmem::wait_until(flag, shmem::Cmp::Eq, 7);
    shmem::wait_until(flag, shmem::Cmp::Ne, 5);
    shmem::wait_until(flag, shmem::Cmp::Gt, 6);
    shmem::wait_until(flag, shmem::Cmp::Le, 7);
    shmem::wait_until(flag, shmem::Cmp::Lt, 8);
    SUCCEED();
  });
}

TEST(ShmemSync, WaitUntilFlagMustBeSymmetric) {
  EXPECT_THROW(spmd(1,
                    [](RankCtx&) {
                      std::uint64_t local = 0;
                      shmem::wait_until(&local, shmem::Cmp::Eq, 0);
                    }),
               cid::CidError);
}

TEST(ShmemTime, QuietCompletesOutgoingWire) {
  const auto model = MachineModel::cray_xk7_gemini();
  cid::rt::run(2, model, [&](RankCtx& ctx) {
    double* dest = shmem::malloc_of<double>(1024);
    ctx.barrier();
    if (ctx.rank() == 0) {
      std::vector<double> src(1024, 1.0);
      const double before = ctx.clock().now();
      shmem::put(dest, src.data(), 1024, 1);
      // The put returns after injection (overhead + NIC occupancy), well
      // before the remote delivery completes.
      const double injection =
          model.shmem.injection_time(1024 * sizeof(double));
      EXPECT_NEAR(ctx.clock().now() - before, injection, 1e-9);
      shmem::quiet();
      // After quiet the clock covers latency + bytes/bandwidth.
      const double wire = 1024 * sizeof(double) / model.shmem.bytes_per_second;
      EXPECT_GE(ctx.clock().now() - before, model.shmem.latency + wire);
    }
    shmem::barrier_all();
  });
}

TEST(ShmemTime, SmallMessageInjectionBeatsMpi) {
  const auto model = MachineModel::cray_xk7_gemini();
  // The paper's core observation: SHMEM wins on 8-256 B messages.
  EXPECT_LT(model.shmem.send_overhead + model.shmem.latency,
            model.mpi_two_sided.send_overhead +
                model.mpi_two_sided.recv_overhead +
                model.mpi_two_sided.latency);
}

TEST(ShmemPut, ManyToOneCounterAccumulates) {
  spmd(4, [](RankCtx& ctx) {
    // Each non-root PE writes its slot on PE 0; one barrier completes all.
    int* slots = shmem::malloc_of<int>(4);
    std::fill(slots, slots + 4, -1);
    ctx.barrier();
    if (ctx.rank() != 0) {
      int value = ctx.rank() * 11;
      shmem::put(slots + ctx.rank(), &value, 1, 0);
    }
    shmem::barrier_all();
    if (ctx.rank() == 0) {
      EXPECT_EQ(slots[1], 11);
      EXPECT_EQ(slots[2], 22);
      EXPECT_EQ(slots[3], 33);
      EXPECT_EQ(slots[0], -1);
    }
  });
}

TEST(ShmemHeap, ExhaustionThrows) {
  EXPECT_THROW(
      spmd(1,
           [](RankCtx&) {
             // Exceed the default per-PE capacity in 1 MiB chunks.
             for (int i = 0; i < 20; ++i) {
               shmem::malloc_sym(1u << 20);
             }
           }),
      cid::CidError);
}

}  // namespace

namespace {

// --- key-coordinated internal allocations (shared_flags) --------------------

TEST(ShmemSharedFlags, SameOffsetRegardlessOfCallOrder) {
  spmd(4, [](RankCtx& ctx) {
    // Ranks call in different orders and interleave user allocations; the
    // same key must land at the same offset everywhere.
    auto& heap = shmem::SymmetricHeap::of_world(ctx);
    std::uint64_t* flags_a = nullptr;
    std::uint64_t* flags_b = nullptr;
    if (ctx.rank() % 2 == 0) {
      flags_a = shmem::shared_flags("site.a", 4);
      flags_b = shmem::shared_flags("site.b", 4);
    } else {
      flags_b = shmem::shared_flags("site.b", 4);
      flags_a = shmem::shared_flags("site.a", 4);
    }
    // Offsets must agree across ranks: write via put and observe.
    ctx.barrier();
    if (ctx.rank() == 0) {
      shmem::put_value64(&flags_a[0], 111, 3);
      shmem::put_value64(&flags_b[0], 222, 3);
      shmem::quiet();
    }
    ctx.barrier();
    if (ctx.rank() == 3) {
      EXPECT_EQ(flags_a[0], 111u);
      EXPECT_EQ(flags_b[0], 222u);
    }
    (void)heap;
  });
}

TEST(ShmemSharedFlags, SomeRanksNeverCall) {
  spmd(3, [](RankCtx& ctx) {
    // Rank 1 never asks for the key; ranks 0 and 2 still agree.
    if (ctx.rank() == 1) {
      ctx.barrier();
      ctx.barrier();
      return;
    }
    std::uint64_t* flags = shmem::shared_flags("partial.site", 2);
    ctx.barrier();
    if (ctx.rank() == 0) {
      shmem::put_value64(&flags[1], 77, 2);
      shmem::quiet();
    }
    ctx.barrier();
    if (ctx.rank() == 2) { EXPECT_EQ(flags[1], 77u); }
  });
}

TEST(ShmemSharedFlags, ZeroInitialized) {
  spmd(1, [](RankCtx&) {
    std::uint64_t* flags = shmem::shared_flags("fresh", 8);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(flags[i], 0u);
  });
}

TEST(ShmemSharedFlags, ArenaAndUserAllocationsDoNotCollide) {
  spmd(1, [](RankCtx&) {
    // Fill most of the heap from the bottom, then internal from the top.
    auto* big = shmem::malloc_sym(700 * 1024);
    auto* flags = shmem::shared_flags("top", 1024);
    EXPECT_TRUE(shmem::is_symmetric(big));
    EXPECT_TRUE(shmem::is_symmetric(flags));
    EXPECT_GT(static_cast<void*>(flags), static_cast<void*>(big));
    // Exhausting the remaining space from either side throws cleanly.
    EXPECT_THROW(shmem::malloc_sym(400 * 1024), cid::CidError);
  });
}

}  // namespace

namespace {

TEST(ShmemCollectives, Broadcast64) {
  spmd(5, [](RankCtx& ctx) {
    auto* dest = shmem::malloc_of<std::uint64_t>(3);
    std::uint64_t source[3] = {0, 0, 0};
    if (ctx.rank() == 2) {
      source[0] = 7;
      source[1] = 8;
      source[2] = 9;
    }
    ctx.barrier();
    shmem::broadcast64(dest, source, 3, 2);
    EXPECT_EQ(dest[0], 7u);
    EXPECT_EQ(dest[2], 9u);
  });
}

TEST(ShmemCollectives, Fcollect64) {
  spmd(4, [](RankCtx& ctx) {
    auto* dest = shmem::malloc_of<std::uint64_t>(4);
    std::uint64_t mine[1] = {static_cast<std::uint64_t>(100 + ctx.rank())};
    ctx.barrier();
    shmem::fcollect64(dest, mine, 1);
    for (int pe = 0; pe < 4; ++pe) {
      EXPECT_EQ(dest[pe], static_cast<std::uint64_t>(100 + pe));
    }
  });
}

}  // namespace
