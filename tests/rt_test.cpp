// Tests for the SPMD runtime: launch, rank identity, virtual clocks,
// max-reducing barrier, mailboxes, failure poisoning.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "rt/arena.hpp"
#include "rt/payload.hpp"
#include "rt/runtime.hpp"

namespace {

using cid::rt::RankCtx;
using cid::simnet::MachineModel;

TEST(Runtime, RunsEveryRankExactlyOnce) {
  std::atomic<int> visits{0};
  std::array<std::atomic<int>, 8> per_rank{};
  cid::rt::run(8, MachineModel::zero(), [&](RankCtx& ctx) {
    visits.fetch_add(1);
    per_rank[static_cast<std::size_t>(ctx.rank())].fetch_add(1);
    EXPECT_EQ(ctx.nranks(), 8);
  });
  EXPECT_EQ(visits.load(), 8);
  for (const auto& count : per_rank) EXPECT_EQ(count.load(), 1);
}

TEST(Runtime, SingleRankWorldWorks) {
  auto result = cid::rt::run(1, MachineModel::zero(),
                             [](RankCtx& ctx) { ctx.barrier(); });
  EXPECT_EQ(result.final_clocks.size(), 1u);
}

TEST(Runtime, RejectsZeroRanks) {
  EXPECT_THROW(cid::rt::run(0, MachineModel::zero(), [](RankCtx&) {}),
               cid::CidError);
}

TEST(Runtime, CurrentCtxOutsideRegionThrows) {
  EXPECT_THROW(cid::rt::current_ctx(), cid::CidError);
  EXPECT_FALSE(cid::rt::in_spmd_region());
}

TEST(Runtime, CurrentCtxInsideRegionMatchesArgument) {
  cid::rt::run(4, MachineModel::zero(), [](RankCtx& ctx) {
    EXPECT_TRUE(cid::rt::in_spmd_region());
    EXPECT_EQ(&cid::rt::current_ctx(), &ctx);
  });
}

TEST(Runtime, ChargeComputeAdvancesOnlyLocalClock) {
  auto result = cid::rt::run(3, MachineModel::zero(), [](RankCtx& ctx) {
    ctx.charge_compute(static_cast<double>(ctx.rank()) * 1e-3);
  });
  EXPECT_DOUBLE_EQ(result.final_clocks[0], 0.0);
  EXPECT_DOUBLE_EQ(result.final_clocks[1], 1e-3);
  EXPECT_DOUBLE_EQ(result.final_clocks[2], 2e-3);
  EXPECT_DOUBLE_EQ(result.makespan(), 2e-3);
}

TEST(Runtime, BarrierMaxReducesClocks) {
  MachineModel model = MachineModel::zero();
  model.barrier_base = 5e-6;
  auto result = cid::rt::run(4, model, [](RankCtx& ctx) {
    ctx.charge_compute(static_cast<double>(ctx.rank()) * 1e-3);
    ctx.barrier();
  });
  // Everyone leaves the barrier at max(3ms) + barrier cost.
  for (double clock : result.final_clocks) {
    EXPECT_DOUBLE_EQ(clock, 3e-3 + 5e-6);
  }
}

TEST(Runtime, RepeatedBarriersStayConsistent) {
  auto result = cid::rt::run(5, MachineModel::zero(), [](RankCtx& ctx) {
    for (int i = 0; i < 50; ++i) {
      ctx.charge_compute(1e-6);
      ctx.barrier();
    }
  });
  for (double clock : result.final_clocks) {
    EXPECT_NEAR(clock, 50e-6, 1e-12);
  }
}

TEST(Runtime, ExceptionOnOneRankPropagatesAndUnblocksOthers) {
  EXPECT_THROW(
      cid::rt::run(4, MachineModel::zero(),
                   [](RankCtx& ctx) {
                     if (ctx.rank() == 2) {
                       throw cid::CidError(cid::ErrorCode::InvalidArgument,
                                           "boom");
                     }
                     ctx.barrier();  // would deadlock without poisoning
                   }),
      cid::CidError);
}

TEST(Runtime, ExceptionWhileWaitingOnMailboxUnblocks) {
  EXPECT_THROW(cid::rt::run(2, MachineModel::zero(),
                            [](RankCtx& ctx) {
                              if (ctx.rank() == 0) {
                                throw std::runtime_error("fail");
                              }
                              // Rank 1 waits forever for a message that will
                              // never come; poisoning must wake it.
                              ctx.mailbox().wait_extract(
                                  [](const cid::rt::Envelope&) {
                                    return true;
                                  });
                            }),
               std::runtime_error);
}

TEST(Runtime, NestedRunIsRejected) {
  EXPECT_THROW(cid::rt::run(1, MachineModel::zero(),
                            [](RankCtx&) {
                              cid::rt::run(1, MachineModel::zero(),
                                           [](RankCtx&) {});
                            }),
               cid::CidError);
}

TEST(Mailbox, DeliversInArrivalOrder) {
  cid::rt::run(2, MachineModel::zero(), [](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 5; ++i) {
        cid::rt::Envelope envelope;
        envelope.src = 0;
        envelope.tag = i;
        ctx.world().mailbox(1).push(std::move(envelope));
      }
    } else {
      for (int i = 0; i < 5; ++i) {
        auto envelope = ctx.mailbox().wait_extract(
            [](const cid::rt::Envelope&) { return true; });
        EXPECT_EQ(envelope.tag, i);
      }
    }
  });
}

TEST(Mailbox, PredicateSelectsAcrossQueue) {
  cid::rt::run(2, MachineModel::zero(), [](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      for (int tag : {7, 3, 9}) {
        cid::rt::Envelope envelope;
        envelope.src = 0;
        envelope.tag = tag;
        ctx.world().mailbox(1).push(std::move(envelope));
      }
    } else {
      auto nine = ctx.mailbox().wait_extract(
          [](const cid::rt::Envelope& e) { return e.tag == 9; });
      EXPECT_EQ(nine.tag, 9);
      auto seven = ctx.mailbox().wait_extract(
          [](const cid::rt::Envelope&) { return true; });
      EXPECT_EQ(seven.tag, 7);  // arrival order among the rest
      EXPECT_EQ(ctx.mailbox().size(), 1u);
    }
  });
}

TEST(Mailbox, TryExtractReturnsEmptyWhenNoMatch) {
  cid::rt::run(1, MachineModel::zero(), [](RankCtx& ctx) {
    auto result = ctx.mailbox().try_extract(
        [](const cid::rt::Envelope&) { return true; });
    EXPECT_FALSE(result.has_value());
  });
}

// Helper for the MatchKey tests: queue one envelope into the calling rank's
// own mailbox.
void push_self(RankCtx& ctx, int src, int tag, cid::rt::Channel channel,
               int context, bool faulted = false) {
  cid::rt::Envelope envelope;
  envelope.src = src;
  envelope.tag = tag;
  envelope.channel = channel;
  envelope.context = context;
  envelope.faulted = faulted;
  ctx.mailbox().push(std::move(envelope));
}

TEST(MatchKey, ExactExtractPreservesNonOvertakingOrder) {
  cid::rt::run(1, MachineModel::zero(), [](RankCtx& ctx) {
    // Three messages from (src=2, tag=5) interleaved with unrelated traffic
    // on the same channel+context; exact extraction must see them in arrival
    // (push) order - MPI's non-overtaking guarantee.
    using cid::rt::Channel;
    push_self(ctx, 2, 5, Channel::MpiPointToPoint, 0);  // seq 0
    push_self(ctx, 3, 5, Channel::MpiPointToPoint, 0);
    push_self(ctx, 2, 7, Channel::MpiPointToPoint, 0);
    push_self(ctx, 2, 5, Channel::MpiPointToPoint, 0);  // seq 3
    push_self(ctx, 2, 5, Channel::MpiPointToPoint, 0);  // seq 4
    cid::rt::MatchKey key;
    key.src = 2;
    key.tag = 5;
    std::vector<std::uint64_t> seqs;
    while (auto e = ctx.mailbox().try_extract(key)) seqs.push_back(e->seq);
    ASSERT_EQ(seqs.size(), 3u);
    EXPECT_TRUE(std::is_sorted(seqs.begin(), seqs.end()));
    EXPECT_EQ(seqs.front(), 0u);
    EXPECT_EQ(ctx.mailbox().size(), 2u);  // the unrelated two remain
  });
}

TEST(MatchKey, WildcardsMatchAcrossSourcesAndTagsInArrivalOrder) {
  cid::rt::run(1, MachineModel::zero(), [](RankCtx& ctx) {
    using cid::rt::Channel;
    push_self(ctx, 0, 10, Channel::MpiPointToPoint, 0);
    push_self(ctx, 4, 11, Channel::MpiPointToPoint, 0);
    push_self(ctx, 1, 10, Channel::MpiPointToPoint, 0);

    // ANY_SOURCE with an exact tag.
    cid::rt::MatchKey any_src;
    any_src.src = cid::rt::kMatchAny;
    any_src.tag = 10;
    auto first = ctx.mailbox().try_extract(any_src);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->src, 0);  // arrival order, not source order

    // ANY_SOURCE + ANY_TAG takes whatever arrived first of the rest.
    cid::rt::MatchKey any_any;
    any_any.src = cid::rt::kMatchAny;
    any_any.tag = cid::rt::kMatchAny;
    auto second = ctx.mailbox().try_extract(any_any);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->src, 4);
    EXPECT_EQ(second->tag, 11);
  });
}

TEST(MatchKey, FaultFiltersSeparateTombstonesFromCleanTraffic) {
  cid::rt::run(1, MachineModel::zero(), [](RankCtx& ctx) {
    using cid::rt::Channel;
    // Clean / tombstone / clean / tombstone, all same (src, tag).
    push_self(ctx, 1, 3, Channel::MpiPointToPoint, 0, /*faulted=*/false);
    push_self(ctx, 1, 3, Channel::MpiPointToPoint, 0, /*faulted=*/true);
    push_self(ctx, 1, 3, Channel::MpiPointToPoint, 0, /*faulted=*/false);
    push_self(ctx, 1, 3, Channel::MpiPointToPoint, 0, /*faulted=*/true);

    cid::rt::MatchKey clean;  // FaultFilter::Clean is the default
    clean.src = 1;
    clean.tag = 3;
    auto c1 = ctx.mailbox().try_extract(clean);
    ASSERT_TRUE(c1.has_value());
    EXPECT_EQ(c1->seq, 0u);  // skipped no clean envelope

    cid::rt::MatchKey faulted = clean;
    faulted.faults = cid::rt::FaultFilter::Faulted;
    auto t1 = ctx.mailbox().try_extract(faulted);
    ASSERT_TRUE(t1.has_value());
    EXPECT_TRUE(t1->faulted);
    EXPECT_EQ(t1->seq, 1u);

    // FaultFilter::Any drains the rest in arrival order regardless of flag.
    cid::rt::MatchKey any = clean;
    any.faults = cid::rt::FaultFilter::Any;
    auto a1 = ctx.mailbox().try_extract(any);
    auto a2 = ctx.mailbox().try_extract(any);
    ASSERT_TRUE(a1.has_value() && a2.has_value());
    EXPECT_EQ(a1->seq, 2u);
    EXPECT_FALSE(a1->faulted);
    EXPECT_EQ(a2->seq, 3u);
    EXPECT_TRUE(a2->faulted);
    EXPECT_EQ(ctx.mailbox().size(), 0u);
  });
}

TEST(MatchKey, MidQueueExactExtractionKeepsRemainingOrder) {
  cid::rt::run(1, MachineModel::zero(), [](RankCtx& ctx) {
    using cid::rt::Channel;
    for (int tag : {1, 2, 3, 2, 1}) {
      push_self(ctx, 0, tag, Channel::MpiPointToPoint, 0);
    }
    // Pull tag 3 out of the middle, then both tag-2 envelopes; the per-(src,
    // tag) sub-queues must skip the holes the other extractions left behind.
    cid::rt::MatchKey key;
    key.src = 0;
    key.tag = 3;
    ASSERT_TRUE(ctx.mailbox().try_extract(key).has_value());
    key.tag = 2;
    auto first2 = ctx.mailbox().try_extract(key);
    auto second2 = ctx.mailbox().try_extract(key);
    ASSERT_TRUE(first2.has_value() && second2.has_value());
    EXPECT_LT(first2->seq, second2->seq);
    // Only the two tag-1 envelopes remain, still in arrival order.
    cid::rt::MatchKey any;
    any.src = cid::rt::kMatchAny;
    any.tag = cid::rt::kMatchAny;
    auto r1 = ctx.mailbox().try_extract(any);
    auto r2 = ctx.mailbox().try_extract(any);
    ASSERT_TRUE(r1.has_value() && r2.has_value());
    EXPECT_EQ(r1->tag, 1);
    EXPECT_EQ(r2->tag, 1);
    EXPECT_LT(r1->seq, r2->seq);
  });
}

TEST(MatchKey, ExactSublistSkipsEnvelopesStolenByWildcard) {
  cid::rt::run(1, MachineModel::zero(), [](RankCtx& ctx) {
    using cid::rt::Channel;
    // Pinned receives and MPI_ANY_SOURCE compete in one bucket: a wildcard
    // extraction removes the head of the (src=2, tag=5) exact sub-queue
    // behind its back, leaving a stale seq the fast path must skip lazily.
    push_self(ctx, 2, 5, Channel::MpiPointToPoint, 0);  // seq 0
    push_self(ctx, 3, 5, Channel::MpiPointToPoint, 0);  // seq 1
    push_self(ctx, 2, 5, Channel::MpiPointToPoint, 0);  // seq 2

    cid::rt::MatchKey any_src;
    any_src.src = cid::rt::kMatchAny;
    any_src.tag = 5;
    auto stolen = ctx.mailbox().try_extract(any_src);
    ASSERT_TRUE(stolen.has_value());
    EXPECT_EQ(stolen->seq, 0u);  // arrival order: src 2's sub-queue head

    cid::rt::MatchKey pinned;
    pinned.src = 2;
    pinned.tag = 5;
    auto remaining = ctx.mailbox().try_extract(pinned);
    ASSERT_TRUE(remaining.has_value());
    EXPECT_EQ(remaining->seq, 2u);  // stale seq 0 skipped, not matched twice
    EXPECT_FALSE(ctx.mailbox().try_extract(pinned).has_value());

    pinned.src = 3;
    auto other = ctx.mailbox().try_extract(pinned);
    ASSERT_TRUE(other.has_value());
    EXPECT_EQ(other->seq, 1u);
    EXPECT_EQ(ctx.mailbox().size(), 0u);
  });
}

TEST(MatchKey, ExactResidualSkipLeavesRejectedEnvelopeInPlace) {
  cid::rt::run(1, MachineModel::zero(), [](RankCtx& ctx) {
    using cid::rt::Channel;
    push_self(ctx, 1, 5, Channel::MpiPointToPoint, 0);  // seq 0
    push_self(ctx, 1, 5, Channel::MpiPointToPoint, 0);  // seq 1

    // The residual rejects the sub-queue head; the fast path must advance
    // to seq 1 without erasing or re-examining seq 0.
    cid::rt::MatchKey pinned;
    pinned.src = 1;
    pinned.tag = 5;
    cid::rt::Mailbox::Residual reject_head = [](const cid::rt::Envelope& e) {
      return e.seq != 0;
    };
    auto second = ctx.mailbox().try_extract(pinned, &reject_head);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->seq, 1u);

    // The rejected envelope is still there for an unconstrained receive —
    // residual skips must never drop messages.
    auto head = ctx.mailbox().try_extract(pinned);
    ASSERT_TRUE(head.has_value());
    EXPECT_EQ(head->seq, 0u);
    EXPECT_EQ(ctx.mailbox().size(), 0u);
  });
}

TEST(MatchKey, ResidualAndWildcardMixNeverSkipsALegalMatch) {
  cid::rt::run(1, MachineModel::zero(), [](RankCtx& ctx) {
    using cid::rt::Channel;
    // Interleaved sources, one bucket: (1,5) (2,5) (1,5) (3,5).
    push_self(ctx, 1, 5, Channel::MpiPointToPoint, 0);  // seq 0
    push_self(ctx, 2, 5, Channel::MpiPointToPoint, 0);  // seq 1
    push_self(ctx, 1, 5, Channel::MpiPointToPoint, 0);  // seq 2
    push_self(ctx, 3, 5, Channel::MpiPointToPoint, 0);  // seq 3

    // Pinned receive whose residual rejects the head: lands on seq 2.
    cid::rt::MatchKey pinned;
    pinned.src = 1;
    pinned.tag = 5;
    cid::rt::Mailbox::Residual reject_head = [](const cid::rt::Envelope& e) {
      return e.seq != 0;
    };
    auto later = ctx.mailbox().try_extract(pinned, &reject_head);
    ASSERT_TRUE(later.has_value());
    EXPECT_EQ(later->seq, 2u);

    // Wildcard sweep picks up the rejected head first (global order), then
    // the other sources' messages; nothing was lost to the earlier skip.
    cid::rt::MatchKey any_src;
    any_src.src = cid::rt::kMatchAny;
    any_src.tag = 5;
    std::vector<std::uint64_t> seqs;
    while (auto e = ctx.mailbox().try_extract(any_src)) seqs.push_back(e->seq);
    EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0u, 1u, 3u}));
    EXPECT_EQ(ctx.mailbox().size(), 0u);
  });
}

TEST(MatchKey, MultiKeyPinnedPlusWildcardHonorsResidualPerCandidate) {
  cid::rt::run(1, MachineModel::zero(), [](RankCtx& ctx) {
    using cid::rt::Channel;
    push_self(ctx, 1, 5, Channel::MpiPointToPoint, 0);  // seq 0
    push_self(ctx, 2, 6, Channel::MpiPointToPoint, 0);  // seq 1

    // One wait posts a pinned key and an ANY_SOURCE key together; the
    // residual vetoes the pinned head, so the wildcard's (later) envelope
    // must win even though the pinned candidate has the lower seq.
    std::vector<cid::rt::MatchKey> keys(2);
    keys[0].src = 1;
    keys[0].tag = 5;
    keys[1].src = cid::rt::kMatchAny;
    keys[1].tag = 6;
    cid::rt::Mailbox::Residual not_seq0 = [](const cid::rt::Envelope& e) {
      return e.seq != 0;
    };
    auto winner = ctx.mailbox().try_extract(
        std::span<const cid::rt::MatchKey>(keys), &not_seq0);
    ASSERT_TRUE(winner.has_value());
    EXPECT_EQ(winner->seq, 1u);
    // Without the residual the pinned envelope is immediately extractable.
    auto head = ctx.mailbox().try_extract(
        std::span<const cid::rt::MatchKey>(keys));
    ASSERT_TRUE(head.has_value());
    EXPECT_EQ(head->seq, 0u);
  });
}

TEST(MatchKey, MultiKeyExtractionReturnsGlobalArrivalOrderAcrossBuckets) {
  cid::rt::run(1, MachineModel::zero(), [](RankCtx& ctx) {
    using cid::rt::Channel;
    // Envelopes land in different (channel, context) buckets; a multi-key
    // wait must still hand them back in global arrival order, exactly like
    // the old single-queue scan did.
    push_self(ctx, 0, 1, Channel::Internal, 7);         // seq 0
    push_self(ctx, 0, 1, Channel::MpiPointToPoint, 0);  // seq 1
    push_self(ctx, 0, 1, Channel::Internal, 8);         // seq 2
    std::vector<cid::rt::MatchKey> keys(3);
    keys[0].channel = Channel::MpiPointToPoint;
    keys[0].context = 0;
    keys[0].src = 0;
    keys[0].tag = 1;
    keys[1].channel = Channel::Internal;
    keys[1].context = 7;
    keys[1].src = 0;
    keys[1].tag = 1;
    keys[2].channel = Channel::Internal;
    keys[2].context = 8;
    keys[2].src = 0;
    keys[2].tag = 1;
    std::vector<std::uint64_t> seqs;
    while (auto e = ctx.mailbox().try_extract(
               std::span<const cid::rt::MatchKey>(keys))) {
      seqs.push_back(e->seq);
    }
    ASSERT_EQ(seqs.size(), 3u);
    EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1, 2}));
  });
}

TEST(MatchKey, ResidualRefinesKeyMatchesWithoutBreakingOrder) {
  cid::rt::run(1, MachineModel::zero(), [](RankCtx& ctx) {
    using cid::rt::Channel;
    for (int src : {5, 6, 5, 7}) {
      push_self(ctx, src, 1, Channel::MpiPointToPoint, 0);
    }
    cid::rt::MatchKey any;
    any.src = cid::rt::kMatchAny;
    any.tag = 1;
    const cid::rt::Mailbox::Residual odd_src_only =
        [](const cid::rt::Envelope& e) { return e.src % 2 == 1; };
    auto first = ctx.mailbox().try_extract(any, &odd_src_only);
    auto second = ctx.mailbox().try_extract(any, &odd_src_only);
    auto third = ctx.mailbox().try_extract(any, &odd_src_only);
    ASSERT_TRUE(first.has_value() && second.has_value() && third.has_value());
    EXPECT_EQ(first->src, 5);
    EXPECT_EQ(second->src, 5);  // the src=6 envelope is skipped, not consumed
    EXPECT_EQ(third->src, 7);
    EXPECT_EQ(ctx.mailbox().size(), 1u);
  });
}

TEST(World, SharedObjectReturnsSameInstance) {
  cid::rt::run(4, MachineModel::zero(), [](RankCtx& ctx) {
    auto object = ctx.world().shared_object<std::atomic<int>>("test.counter");
    object->fetch_add(1);
    ctx.barrier();
    EXPECT_EQ(object->load(), 4);
  });
}

TEST(World, SharedObjectTypeMismatchThrows) {
  cid::rt::run(1, MachineModel::zero(), [](RankCtx& ctx) {
    ctx.world().shared_object<int>("test.key");
    EXPECT_THROW(ctx.world().shared_object<double>("test.key"),
                 cid::CidError);
  });
}

TEST(World, ManyRanksOversubscribed) {
  // Far more ranks than cores: everything must still terminate.
  auto result = cid::rt::run(64, MachineModel::zero(), [](RankCtx& ctx) {
    ctx.barrier();
    ctx.charge_compute(1e-6);
    ctx.barrier();
  });
  EXPECT_EQ(result.final_clocks.size(), 64u);
}

TEST(VirtualClock, AdvanceToNeverMovesBackwards) {
  cid::simnet::VirtualClock clock;
  clock.advance(5.0);
  clock.advance_to(3.0);
  EXPECT_DOUBLE_EQ(clock.now(), 5.0);
  clock.advance_to(7.0);
  EXPECT_DOUBLE_EQ(clock.now(), 7.0);
}

TEST(VirtualClock, NegativeAdvanceThrows) {
  cid::simnet::VirtualClock clock;
  EXPECT_THROW(clock.advance(-1.0), cid::CidError);
}

TEST(MachineModel, BarrierCostGrowsLogarithmically) {
  const auto model = MachineModel::cray_xk7_gemini();
  EXPECT_LT(model.barrier_cost(2), model.barrier_cost(64));
  EXPECT_LT(model.barrier_cost(64), model.barrier_cost(1024));
  // log2 growth: doubling ranks adds one stage.
  const double d1 = model.barrier_cost(8) - model.barrier_cost(4);
  const double d2 = model.barrier_cost(16) - model.barrier_cost(8);
  EXPECT_DOUBLE_EQ(d1, d2);
}

TEST(MachineModel, DeliveryTimeScalesWithSize) {
  const auto model = MachineModel::cray_xk7_gemini();
  const auto& path = model.mpi_two_sided;
  const double small = path.delivery_time(0.0, 8);
  const double large = path.delivery_time(0.0, 1 << 20);
  EXPECT_LT(small, large);
  EXPECT_NEAR(large - small,
              (static_cast<double>((1 << 20) - 8)) / path.bytes_per_second +
                  path.rendezvous_extra_latency,
              1e-12);
}

// ---- Pooled fiber scheduler ------------------------------------------------

namespace sched = cid::rt::sched;

/// A program touching every virtual-time mechanism: compute, ring
/// messaging, and barriers. Used to pin pool/threads equivalence.
void ring_program(RankCtx& ctx) {
  const int np = ctx.nranks();
  const int next = (ctx.rank() + 1) % np;
  ctx.charge_compute(1e-6 * (ctx.rank() + 1));
  ctx.barrier();
  cid::rt::Envelope envelope;
  envelope.src = ctx.rank();
  envelope.tag = 7;
  envelope.available_at = ctx.clock().now() + 2e-6;
  ctx.world().mailbox(next).push(std::move(envelope));
  auto got = ctx.mailbox().wait_extract(
      [](const cid::rt::Envelope&) { return true; });
  ctx.clock().advance_to(got.available_at);
  ctx.barrier();
}

TEST(Sched, PoolAndThreadsProduceIdenticalClocks) {
  // Virtual time must not depend on the scheduler: same program, same model,
  // bit-identical final clocks under the fiber pool and thread-per-rank.
  cid::rt::RunOptions pool;
  pool.scheduler = sched::Mode::kPool;
  cid::rt::RunOptions threads;
  threads.scheduler = sched::Mode::kThreads;
  const auto model = MachineModel::cray_xk7_gemini();
  auto pooled = cid::rt::run(33, model, ring_program, pool);
  auto threaded = cid::rt::run(33, model, ring_program, threads);
  EXPECT_TRUE(pooled.pooled);
  EXPECT_FALSE(threaded.pooled);
  ASSERT_EQ(pooled.final_clocks.size(), threaded.final_clocks.size());
  for (std::size_t r = 0; r < pooled.final_clocks.size(); ++r) {
    EXPECT_EQ(pooled.final_clocks[r], threaded.final_clocks[r]) << "rank " << r;
  }
}

TEST(Sched, ThousandsOfRanksOnTwoWorkers) {
  // O(nranks) fibers over a tiny fixed pool: barriers (sharded), ring
  // traffic, and compute all terminate, with exactly the requested workers.
  cid::rt::RunOptions options;
  options.scheduler = sched::Mode::kPool;
  options.sim_workers = 2;
  auto result =
      cid::rt::run(2048, MachineModel::zero(), ring_program, options);
  EXPECT_TRUE(result.pooled);
  EXPECT_EQ(result.sched_stats.workers, 2u);
  EXPECT_EQ(result.sched_stats.fibers, 2048u);
  EXPECT_EQ(result.final_clocks.size(), 2048u);
}

TEST(Sched, YieldLetsBusyPollersMakeProgress) {
  // A non-blocking poll loop must yield its worker or the polled-for peer
  // never runs on a bounded pool. sched::yield() is that escape hatch (the
  // mpi::test / iprobe miss paths call it).
  cid::rt::RunOptions options;
  options.scheduler = sched::Mode::kPool;
  options.sim_workers = 1;
  auto result = cid::rt::run(
      4, MachineModel::zero(),
      [](RankCtx& ctx) {
        if (ctx.rank() == 0) {
          for (int dest = 1; dest < ctx.nranks(); ++dest) {
            cid::rt::Envelope envelope;
            envelope.src = 0;
            ctx.world().mailbox(dest).push(std::move(envelope));
          }
        } else {
          while (true) {
            auto got = ctx.mailbox().try_extract(
                [](const cid::rt::Envelope&) { return true; });
            if (got.has_value()) break;
            sched::yield();
          }
        }
      },
      options);
  EXPECT_TRUE(result.pooled);
}

TEST(Sched, SmallExplicitStacksWork) {
  cid::rt::RunOptions options;
  options.scheduler = sched::Mode::kPool;
  options.sim_stack_bytes = 64 * 1024;  // the enforced minimum
  auto result = cid::rt::run(64, MachineModel::zero(), ring_program, options);
  EXPECT_EQ(result.final_clocks.size(), 64u);
}

TEST(Sched, PoisonDuringThousandRankBarrier) {
  // One rank of a 1000-rank world dies while every other rank is inside the
  // sharded barrier; the poison must wake all shards and the run must
  // rethrow after a clean teardown. (The TSan CI shard runs this test.)
  cid::rt::RunOptions options;
  options.scheduler = sched::Mode::kPool;
  EXPECT_THROW(
      cid::rt::run(
          1000, MachineModel::zero(),
          [](RankCtx& ctx) {
            if (ctx.rank() == 613) {
              throw std::runtime_error("mid-barrier failure");
            }
            ctx.barrier();
          },
          options),
      std::runtime_error);
}

TEST(Sched, PoisonWakesMailboxAndBarrierWaitersTogether) {
  // Mixed blocking: half the ranks in the barrier, half in mailbox waits,
  // and the failing rank poisons both kinds at once.
  cid::rt::RunOptions options;
  options.scheduler = sched::Mode::kPool;
  EXPECT_THROW(
      cid::rt::run(
          256, MachineModel::zero(),
          [](RankCtx& ctx) {
            if (ctx.rank() == 0) throw std::runtime_error("die");
            if (ctx.rank() % 2 == 0) {
              ctx.barrier();
            } else {
              ctx.mailbox().wait_extract(
                  [](const cid::rt::Envelope&) { return true; });
            }
          },
          options),
      std::runtime_error);
}

// ---- Envelope arena --------------------------------------------------------

TEST(Arena, RecyclesPayloadBuffers) {
  auto& arena = cid::rt::PayloadArena::global();
  const auto before = arena.stats();
  cid::ByteBuffer buffer = arena.acquire(4096);
  EXPECT_EQ(buffer.size(), 4096u);
  arena.release(std::move(buffer));
  const auto mid = arena.stats();
  EXPECT_EQ(mid.releases, before.releases + 1);
  EXPECT_EQ(mid.retained, before.retained + 1);
  // Re-acquiring the same size class must come from the bin, not malloc.
  cid::ByteBuffer again = arena.acquire(4000);  // same power-of-two bin
  const auto after = arena.stats();
  EXPECT_EQ(again.size(), 4000u);
  EXPECT_EQ(after.reuses, mid.reuses + 1);
  arena.release(std::move(again));
}

TEST(Arena, RecycledBuffersAreZeroed) {
  auto& arena = cid::rt::PayloadArena::global();
  cid::ByteBuffer buffer = arena.acquire(512);
  for (auto& b : buffer) b = std::byte{0xAB};
  arena.release(std::move(buffer));
  cid::ByteBuffer again = arena.acquire(512);
  for (std::byte b : again) {
    ASSERT_EQ(b, std::byte{0});  // same value-init guarantee as a fresh buffer
  }
  arena.release(std::move(again));
}

TEST(Arena, PayloadRefcountsThroughArenaNodes) {
  cid::ByteBuffer bytes(128);
  bytes[0] = std::byte{42};
  cid::rt::Payload payload(std::move(bytes));
  EXPECT_EQ(payload.use_count(), 1);
  {
    cid::rt::Payload copy = payload;  // shares the node
    EXPECT_EQ(payload.use_count(), 2);
    EXPECT_EQ(copy.data()[0], std::byte{42});
  }
  EXPECT_EQ(payload.use_count(), 1);
  cid::rt::Payload deep = cid::rt::Payload::copy_of(payload.span());
  EXPECT_EQ(deep.use_count(), 1);
  EXPECT_EQ(deep.data()[0], std::byte{42});
}

TEST(Arena, EnvelopeChurnReusesNodes) {
  auto& arena = cid::rt::PayloadArena::global();
  const auto before = arena.stats();
  // Drive payloads through create/destroy churn; the node freelist and
  // buffer bins must absorb it (recycled counters move, not just released).
  for (int i = 0; i < 64; ++i) {
    cid::rt::Payload payload(cid::ByteBuffer(256));
    cid::rt::Payload copy = payload;
    payload.clear();
  }
  const auto after = arena.stats();
  EXPECT_GE(after.node_reuses, before.node_reuses + 32);
}

}  // namespace
