// Tests for the SPMD runtime: launch, rank identity, virtual clocks,
// max-reducing barrier, mailboxes, failure poisoning.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "rt/runtime.hpp"

namespace {

using cid::rt::RankCtx;
using cid::simnet::MachineModel;

TEST(Runtime, RunsEveryRankExactlyOnce) {
  std::atomic<int> visits{0};
  std::array<std::atomic<int>, 8> per_rank{};
  cid::rt::run(8, MachineModel::zero(), [&](RankCtx& ctx) {
    visits.fetch_add(1);
    per_rank[static_cast<std::size_t>(ctx.rank())].fetch_add(1);
    EXPECT_EQ(ctx.nranks(), 8);
  });
  EXPECT_EQ(visits.load(), 8);
  for (const auto& count : per_rank) EXPECT_EQ(count.load(), 1);
}

TEST(Runtime, SingleRankWorldWorks) {
  auto result = cid::rt::run(1, MachineModel::zero(),
                             [](RankCtx& ctx) { ctx.barrier(); });
  EXPECT_EQ(result.final_clocks.size(), 1u);
}

TEST(Runtime, RejectsZeroRanks) {
  EXPECT_THROW(cid::rt::run(0, MachineModel::zero(), [](RankCtx&) {}),
               cid::CidError);
}

TEST(Runtime, CurrentCtxOutsideRegionThrows) {
  EXPECT_THROW(cid::rt::current_ctx(), cid::CidError);
  EXPECT_FALSE(cid::rt::in_spmd_region());
}

TEST(Runtime, CurrentCtxInsideRegionMatchesArgument) {
  cid::rt::run(4, MachineModel::zero(), [](RankCtx& ctx) {
    EXPECT_TRUE(cid::rt::in_spmd_region());
    EXPECT_EQ(&cid::rt::current_ctx(), &ctx);
  });
}

TEST(Runtime, ChargeComputeAdvancesOnlyLocalClock) {
  auto result = cid::rt::run(3, MachineModel::zero(), [](RankCtx& ctx) {
    ctx.charge_compute(static_cast<double>(ctx.rank()) * 1e-3);
  });
  EXPECT_DOUBLE_EQ(result.final_clocks[0], 0.0);
  EXPECT_DOUBLE_EQ(result.final_clocks[1], 1e-3);
  EXPECT_DOUBLE_EQ(result.final_clocks[2], 2e-3);
  EXPECT_DOUBLE_EQ(result.makespan(), 2e-3);
}

TEST(Runtime, BarrierMaxReducesClocks) {
  MachineModel model = MachineModel::zero();
  model.barrier_base = 5e-6;
  auto result = cid::rt::run(4, model, [](RankCtx& ctx) {
    ctx.charge_compute(static_cast<double>(ctx.rank()) * 1e-3);
    ctx.barrier();
  });
  // Everyone leaves the barrier at max(3ms) + barrier cost.
  for (double clock : result.final_clocks) {
    EXPECT_DOUBLE_EQ(clock, 3e-3 + 5e-6);
  }
}

TEST(Runtime, RepeatedBarriersStayConsistent) {
  auto result = cid::rt::run(5, MachineModel::zero(), [](RankCtx& ctx) {
    for (int i = 0; i < 50; ++i) {
      ctx.charge_compute(1e-6);
      ctx.barrier();
    }
  });
  for (double clock : result.final_clocks) {
    EXPECT_NEAR(clock, 50e-6, 1e-12);
  }
}

TEST(Runtime, ExceptionOnOneRankPropagatesAndUnblocksOthers) {
  EXPECT_THROW(
      cid::rt::run(4, MachineModel::zero(),
                   [](RankCtx& ctx) {
                     if (ctx.rank() == 2) {
                       throw cid::CidError(cid::ErrorCode::InvalidArgument,
                                           "boom");
                     }
                     ctx.barrier();  // would deadlock without poisoning
                   }),
      cid::CidError);
}

TEST(Runtime, ExceptionWhileWaitingOnMailboxUnblocks) {
  EXPECT_THROW(cid::rt::run(2, MachineModel::zero(),
                            [](RankCtx& ctx) {
                              if (ctx.rank() == 0) {
                                throw std::runtime_error("fail");
                              }
                              // Rank 1 waits forever for a message that will
                              // never come; poisoning must wake it.
                              ctx.mailbox().wait_extract(
                                  [](const cid::rt::Envelope&) {
                                    return true;
                                  });
                            }),
               std::runtime_error);
}

TEST(Runtime, NestedRunIsRejected) {
  EXPECT_THROW(cid::rt::run(1, MachineModel::zero(),
                            [](RankCtx&) {
                              cid::rt::run(1, MachineModel::zero(),
                                           [](RankCtx&) {});
                            }),
               cid::CidError);
}

TEST(Mailbox, DeliversInArrivalOrder) {
  cid::rt::run(2, MachineModel::zero(), [](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 5; ++i) {
        cid::rt::Envelope envelope;
        envelope.src = 0;
        envelope.tag = i;
        ctx.world().mailbox(1).push(std::move(envelope));
      }
    } else {
      for (int i = 0; i < 5; ++i) {
        auto envelope = ctx.mailbox().wait_extract(
            [](const cid::rt::Envelope&) { return true; });
        EXPECT_EQ(envelope.tag, i);
      }
    }
  });
}

TEST(Mailbox, PredicateSelectsAcrossQueue) {
  cid::rt::run(2, MachineModel::zero(), [](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      for (int tag : {7, 3, 9}) {
        cid::rt::Envelope envelope;
        envelope.src = 0;
        envelope.tag = tag;
        ctx.world().mailbox(1).push(std::move(envelope));
      }
    } else {
      auto nine = ctx.mailbox().wait_extract(
          [](const cid::rt::Envelope& e) { return e.tag == 9; });
      EXPECT_EQ(nine.tag, 9);
      auto seven = ctx.mailbox().wait_extract(
          [](const cid::rt::Envelope&) { return true; });
      EXPECT_EQ(seven.tag, 7);  // arrival order among the rest
      EXPECT_EQ(ctx.mailbox().size(), 1u);
    }
  });
}

TEST(Mailbox, TryExtractReturnsEmptyWhenNoMatch) {
  cid::rt::run(1, MachineModel::zero(), [](RankCtx& ctx) {
    auto result = ctx.mailbox().try_extract(
        [](const cid::rt::Envelope&) { return true; });
    EXPECT_FALSE(result.has_value());
  });
}

TEST(World, SharedObjectReturnsSameInstance) {
  cid::rt::run(4, MachineModel::zero(), [](RankCtx& ctx) {
    auto object = ctx.world().shared_object<std::atomic<int>>("test.counter");
    object->fetch_add(1);
    ctx.barrier();
    EXPECT_EQ(object->load(), 4);
  });
}

TEST(World, SharedObjectTypeMismatchThrows) {
  cid::rt::run(1, MachineModel::zero(), [](RankCtx& ctx) {
    ctx.world().shared_object<int>("test.key");
    EXPECT_THROW(ctx.world().shared_object<double>("test.key"),
                 cid::CidError);
  });
}

TEST(World, ManyRanksOversubscribed) {
  // Far more ranks than cores: everything must still terminate.
  auto result = cid::rt::run(64, MachineModel::zero(), [](RankCtx& ctx) {
    ctx.barrier();
    ctx.charge_compute(1e-6);
    ctx.barrier();
  });
  EXPECT_EQ(result.final_clocks.size(), 64u);
}

TEST(VirtualClock, AdvanceToNeverMovesBackwards) {
  cid::simnet::VirtualClock clock;
  clock.advance(5.0);
  clock.advance_to(3.0);
  EXPECT_DOUBLE_EQ(clock.now(), 5.0);
  clock.advance_to(7.0);
  EXPECT_DOUBLE_EQ(clock.now(), 7.0);
}

TEST(VirtualClock, NegativeAdvanceThrows) {
  cid::simnet::VirtualClock clock;
  EXPECT_THROW(clock.advance(-1.0), cid::CidError);
}

TEST(MachineModel, BarrierCostGrowsLogarithmically) {
  const auto model = MachineModel::cray_xk7_gemini();
  EXPECT_LT(model.barrier_cost(2), model.barrier_cost(64));
  EXPECT_LT(model.barrier_cost(64), model.barrier_cost(1024));
  // log2 growth: doubling ranks adds one stage.
  const double d1 = model.barrier_cost(8) - model.barrier_cost(4);
  const double d2 = model.barrier_cost(16) - model.barrier_cost(8);
  EXPECT_DOUBLE_EQ(d1, d2);
}

TEST(MachineModel, DeliveryTimeScalesWithSize) {
  const auto model = MachineModel::cray_xk7_gemini();
  const auto& path = model.mpi_two_sided;
  const double small = path.delivery_time(0.0, 8);
  const double large = path.delivery_time(0.0, 1 << 20);
  EXPECT_LT(small, large);
  EXPECT_NEAR(large - small,
              (static_cast<double>((1 << 20) - 8)) / path.bytes_per_second +
                  path.rendezvous_extra_latency,
              1e-12);
}

}  // namespace
