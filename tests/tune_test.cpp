// cid::tune tests: profile round-trips, deterministic decision functions,
// the small-message aggregation wire format and its fault tombstones, and
// end-to-end record -> on runs proving tuned dispatch preserves semantics
// (and that CID_TUNE=off after tuner activity stays byte-identical).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "rt/agg.hpp"
#include "rt/mailbox.hpp"
#include "rt/runtime.hpp"
#include "tune/profile.hpp"
#include "tune/tune.hpp"

/// Non-contiguous element for the flat-copy tests: real padding holes
/// between the reflected fields. (Reflection must happen at global scope.)
struct TuneTestPadded {
  char c;    // offset 0, then 7 bytes of padding
  double d;  // offset 8
  int i;     // offset 16, then 4 bytes of tail padding
};
CID_REFLECT_STRUCT(TuneTestPadded, c, d, i)

namespace {

using namespace cid::core;
using cid::ByteSpan;
using cid::rt::RankCtx;
using cid::simnet::MachineModel;
namespace tune = cid::tune;
namespace agg = cid::rt::agg;

/// Set an environment variable for one scope, restoring on exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

tune::SiteProfile sample_site() {
  tune::SiteProfile p;
  p.messages = 128;
  p.bytes = 8192;
  p.min_bytes = 32;
  p.mean_bytes = 64;
  p.max_bytes = 96;
  p.symmetric_ok = true;
  p.plan_ns_per_byte = 1.25;
  p.flat_ns_per_byte = 0.25;
  p.rtt_p50 = 1e-5;
  p.rtt_p99 = 4e-5;
  p.wall_rtt_p99 = 2e-3;
  p.min_timeout = 1.0;
  p.coll_calls = 12;
  p.coll_mean_bytes = 48;
  p.coll_max_bytes = 96;
  p.coll_group = 8;
  p.coll_o2m = 4;
  p.coll_m2o = 3;
  p.coll_a2a = 5;
  return p;
}

// ---------------------------------------------------------------------------
// Profile round-trip and site-key normalization.
// ---------------------------------------------------------------------------

TEST(TuneProfile, JsonRoundTripIsLossless) {
  tune::Profile profile;
  profile.sites["ring.cpp:42"] = sample_site();
  tune::SiteProfile other;
  other.messages = 1;
  other.bytes = 1 << 20;
  other.min_bytes = other.mean_bytes = other.max_bytes = 1 << 20;
  profile.sites["halo.cpp:7"] = other;

  const std::string json = profile.to_json();
  auto parsed = tune::Profile::parse(json);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().sites, profile.sites);
  // Serialization is deterministic: a second pass is byte-identical.
  EXPECT_EQ(parsed.value().to_json(), json);
}

TEST(TuneProfile, ParseRejectsGarbage) {
  EXPECT_FALSE(tune::Profile::parse("not json").is_ok());
  EXPECT_FALSE(tune::Profile::parse("{\"sites\": {}}").is_ok());  // no marker
}

TEST(TuneProfile, NormalizeSiteStripsDirectories) {
  EXPECT_EQ(tune::normalize_site("/a/b/ring.cpp:42"), "ring.cpp:42");
  EXPECT_EQ(tune::normalize_site("ring.cpp:42"), "ring.cpp:42");
}

TEST(TuneProfile, FindNormalizesTheLookupKey) {
  tune::Profile profile;
  profile.sites["ring.cpp:42"] = sample_site();
  EXPECT_NE(profile.find("/home/user/src/ring.cpp:42"), nullptr);
  EXPECT_NE(profile.find("ring.cpp:42"), nullptr);
  EXPECT_EQ(profile.find("ring.cpp:43"), nullptr);
}

// ---------------------------------------------------------------------------
// Decision functions: pure and deterministic given a fixed profile.
// ---------------------------------------------------------------------------

TEST(TuneDecisions, ReliabilityForcesTwoSided) {
  const auto site = sample_site();
  tune::SiteFacts facts;
  facts.reliability = true;
  facts.single_process = true;
  const auto choice =
      tune::auto_target(&site, MachineModel::cray_xk7_gemini(), facts);
  EXPECT_EQ(choice.lowering, tune::Lowering::Mpi2Side);
}

TEST(TuneDecisions, CrossProcessForcesTwoSided) {
  const auto site = sample_site();  // symmetric_ok, would otherwise pick shmem
  tune::SiteFacts facts;
  facts.single_process = false;
  const auto choice =
      tune::auto_target(&site, MachineModel::cray_xk7_gemini(), facts);
  EXPECT_EQ(choice.lowering, tune::Lowering::Mpi2Side);
}

TEST(TuneDecisions, UnknownSiteFallsBackToTwoSided) {
  tune::SiteFacts facts;
  facts.single_process = true;
  const auto choice =
      tune::auto_target(nullptr, MachineModel::cray_xk7_gemini(), facts);
  EXPECT_EQ(choice.lowering, tune::Lowering::Mpi2Side);
  EXPECT_FALSE(choice.reason.empty());
}

TEST(TuneDecisions, SymmetricSmallMessagesPickShmem) {
  // The paper's setEvec case: small messages, symmetric buffers — the SHMEM
  // put path wins on the calibrated Gemini model.
  auto site = sample_site();
  site.mean_bytes = 64;
  site.symmetric_ok = true;
  tune::SiteFacts facts;
  facts.single_process = true;
  const auto choice =
      tune::auto_target(&site, MachineModel::cray_xk7_gemini(), facts);
  EXPECT_EQ(choice.lowering, tune::Lowering::Shmem);

  // Same sizes without the symmetric heap: shmem is off the table.
  site.symmetric_ok = false;
  const auto fallback =
      tune::auto_target(&site, MachineModel::cray_xk7_gemini(), facts);
  EXPECT_NE(fallback.lowering, tune::Lowering::Shmem);
}

TEST(TuneDecisions, DecisionsAreDeterministic) {
  const auto site = sample_site();
  tune::SiteFacts facts;
  facts.single_process = true;
  const auto model = MachineModel::cray_xk7_gemini();
  const auto a = tune::auto_target(&site, model, facts);
  const auto b = tune::auto_target(&site, model, facts);
  EXPECT_EQ(a.lowering, b.lowering);
  EXPECT_EQ(a.reason, b.reason);
}

TEST(TuneDecisions, AggregationThresholdTracksEagerThreshold) {
  auto model = MachineModel::cray_xk7_gemini();
  const std::size_t threshold = tune::aggregation_threshold(model);
  EXPECT_EQ(threshold, std::clamp<std::size_t>(
                           model.mpi_two_sided.eager_threshold_bytes / 4, 64,
                           4096));
}

TEST(TuneDecisions, ShouldAggregateNeedsProfileAndSmallSizes) {
  const auto model = MachineModel::cray_xk7_gemini();
  const std::size_t threshold = tune::aggregation_threshold(model);
  auto site = sample_site();
  site.max_bytes = static_cast<double>(threshold);

  EXPECT_FALSE(tune::should_aggregate(nullptr, 8, model));
  EXPECT_TRUE(tune::should_aggregate(&site, threshold, model));
  EXPECT_FALSE(tune::should_aggregate(&site, threshold + 1, model));

  // A site that ever sent a big message never aggregates (its profile says
  // the small sizes are not representative).
  site.max_bytes = static_cast<double>(threshold) * 8;
  EXPECT_FALSE(tune::should_aggregate(&site, 8, model));
}

TEST(TuneDecisions, FlatCopyNeedsCalibrationDensityAndCrossover) {
  auto site = sample_site();  // plan 1.25 ns/B, flat 0.25 ns/B

  // Dense layout (extent 24, payload 13): flat copy wins.
  EXPECT_TRUE(tune::use_flat_copy(&site, 13, 24));
  // Too sparse: extent > 2x payload.
  EXPECT_FALSE(tune::use_flat_copy(&site, 13, 27));
  // No calibration data: never.
  site.flat_ns_per_byte = 0.0;
  EXPECT_FALSE(tune::use_flat_copy(&site, 13, 24));
  EXPECT_FALSE(tune::use_flat_copy(nullptr, 13, 24));
  // Crossover: flat rate too slow to pay for the extra wire bytes.
  site.flat_ns_per_byte = 1.2;
  EXPECT_FALSE(tune::use_flat_copy(&site, 13, 24));
}

TEST(TuneDecisions, TunedTimeoutCapsAtClauseValue) {
  auto site = sample_site();  // rtt_p99 = 4e-5
  EXPECT_DOUBLE_EQ(tune::tuned_timeout(&site, 1.0), 4.0 * 4e-5);
  EXPECT_DOUBLE_EQ(tune::tuned_timeout(&site, 1e-6), 1e-6);  // clause smaller
  site.rtt_p99 = 0.0;
  EXPECT_DOUBLE_EQ(tune::tuned_timeout(&site, 0.5), 0.5);  // no data
  EXPECT_DOUBLE_EQ(tune::tuned_timeout(nullptr, 0.5), 0.5);
}

// ---------------------------------------------------------------------------
// Collective algorithm selection: decision pins on the cray model in both
// asymptotic regimes, applicability checks, and CID_COLL parsing.
// ---------------------------------------------------------------------------

tune::CollChoice choose(tune::CollOp op, std::size_t block, int nprocs,
                        const tune::SiteProfile* profile = nullptr) {
  const bool vector_op = op == tune::CollOp::Bcast ||
                         op == tune::CollOp::Reduce ||
                         op == tune::CollOp::Allreduce;
  const tune::CollShape shape{
      block,
      vector_op ? block : block * static_cast<std::size_t>(nprocs), nprocs};
  return tune::choose_collective(op, shape, MachineModel::cray_xk7_gemini(),
                                 profile);
}

TEST(TuneColl, DecisionPinsOnCrayModel) {
  using tune::CollAlgo;
  using tune::CollOp;
  // Latency-bound shapes take the logarithmic algorithms; bandwidth-bound
  // shapes take the pipelined / windowed ones. All pins sit comfortably
  // inside their asymptotic regime so small model tweaks don't flip them.
  EXPECT_EQ(choose(CollOp::Bcast, 8, 1024).algo, CollAlgo::Binomial);
  EXPECT_EQ(choose(CollOp::Bcast, 16u << 20, 64).algo, CollAlgo::VanDeGeijn);
  EXPECT_EQ(choose(CollOp::Gather, 64, 4).algo, CollAlgo::Flat);
  EXPECT_EQ(choose(CollOp::Gather, 64, 256).algo, CollAlgo::Binomial);
  EXPECT_EQ(choose(CollOp::Scatter, 64, 256).algo, CollAlgo::Binomial);
  EXPECT_EQ(choose(CollOp::Allgather, 2, 1024).algo,
            CollAlgo::RecursiveDoubling);
  EXPECT_EQ(choose(CollOp::Allgather, 4096, 1024).algo, CollAlgo::Ring);
  EXPECT_EQ(choose(CollOp::Allgather, 2, 1000).algo, CollAlgo::Ring)
      << "recursive doubling must not fire on non-power-of-two groups";
  EXPECT_EQ(choose(CollOp::Alltoall, 8, 1024).algo, CollAlgo::Bruck);
  EXPECT_EQ(choose(CollOp::Alltoall, 64u << 10, 1024).algo,
            CollAlgo::PairwiseWindow);
  EXPECT_EQ(choose(CollOp::Reduce, 8, 1024).algo, CollAlgo::Binomial);
  EXPECT_EQ(choose(CollOp::Reduce, 4u << 20, 64).algo,
            CollAlgo::Rabenseifner);
  EXPECT_EQ(choose(CollOp::Allreduce, 8, 1024).algo,
            CollAlgo::RecursiveDoubling);
  EXPECT_EQ(choose(CollOp::Allreduce, 16u << 20, 1024).algo, CollAlgo::Ring);
  // Degenerate group.
  EXPECT_EQ(choose(CollOp::Allreduce, 8, 1).algo, CollAlgo::Flat);
}

TEST(TuneColl, DecisionsAreDeterministic) {
  for (int i = 0; i < 3; ++i) {
    const auto a = choose(tune::CollOp::Alltoall, 8, 1024);
    const auto b = choose(tune::CollOp::Alltoall, 8, 1024);
    EXPECT_EQ(a.algo, b.algo);
    EXPECT_STREQ(a.reason, b.reason);
  }
}

TEST(TuneColl, ProfileSteeringOverridesCallShape) {
  // A recorded site decides by its observed mean block size: a site whose
  // history says "8-byte blocks" keeps Bruck even when one call is large.
  auto site = sample_site();
  site.coll_calls = 100;
  site.coll_mean_bytes = 8;
  EXPECT_EQ(choose(tune::CollOp::Alltoall, 64u << 10, 1024).algo,
            tune::CollAlgo::PairwiseWindow);
  EXPECT_EQ(choose(tune::CollOp::Alltoall, 64u << 10, 1024, &site).algo,
            tune::CollAlgo::Bruck);
  // A profile with no collective history leaves the call shape in charge.
  site.coll_calls = 0;
  EXPECT_EQ(choose(tune::CollOp::Alltoall, 64u << 10, 1024, &site).algo,
            tune::CollAlgo::PairwiseWindow);
}

TEST(TuneColl, AlgoValidityMatrix) {
  using tune::CollAlgo;
  using tune::CollOp;
  EXPECT_TRUE(tune::coll_algo_valid(CollOp::Bcast, CollAlgo::VanDeGeijn, 8));
  EXPECT_FALSE(tune::coll_algo_valid(CollOp::Bcast, CollAlgo::Bruck, 8));
  EXPECT_TRUE(
      tune::coll_algo_valid(CollOp::Allgather, CollAlgo::RecursiveDoubling, 8));
  EXPECT_FALSE(
      tune::coll_algo_valid(CollOp::Allgather, CollAlgo::RecursiveDoubling, 6));
  EXPECT_TRUE(tune::coll_algo_valid(CollOp::Allreduce, CollAlgo::Ring, 6));
  EXPECT_FALSE(tune::coll_algo_valid(CollOp::Gather, CollAlgo::Ring, 6));
}

TEST(TuneColl, ParseOverridesRoundTrip) {
  auto parsed = tune::parse_coll_overrides(
      "alltoall:bruck,allreduce:rd,allgather:recursive_doubling");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const auto& o = parsed.value();
  EXPECT_EQ(o[static_cast<std::size_t>(tune::CollOp::Alltoall)],
            tune::CollAlgo::Bruck);
  EXPECT_EQ(o[static_cast<std::size_t>(tune::CollOp::Allreduce)],
            tune::CollAlgo::RecursiveDoubling);
  EXPECT_EQ(o[static_cast<std::size_t>(tune::CollOp::Allgather)],
            tune::CollAlgo::RecursiveDoubling);
  EXPECT_FALSE(o[static_cast<std::size_t>(tune::CollOp::Bcast)].has_value());
}

TEST(TuneColl, ParseOverridesRejectsBadEntries) {
  EXPECT_FALSE(tune::parse_coll_overrides("alltoall").is_ok());
  EXPECT_FALSE(tune::parse_coll_overrides("frobnicate:ring").is_ok());
  EXPECT_FALSE(tune::parse_coll_overrides("alltoall:warp").is_ok());
  EXPECT_FALSE(tune::parse_coll_overrides("bcast:bruck").is_ok());
  EXPECT_TRUE(tune::parse_coll_overrides("").is_ok());
  EXPECT_TRUE(tune::parse_coll_overrides("alltoall:bruck,").is_ok());
}

// ---------------------------------------------------------------------------
// Aggregation wire format and the mailbox split.
// ---------------------------------------------------------------------------

std::vector<std::byte> bytes_of(const std::string& text) {
  std::vector<std::byte> out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

TEST(TuneAgg, CodecRoundTrips) {
  std::vector<std::byte> wire;
  const auto a = bytes_of("hello");
  const auto b = bytes_of("world!!");
  agg::append(wire, /*tag=*/7, /*context=*/1, ByteSpan(a.data(), a.size()));
  agg::append(wire, /*tag=*/9, /*context=*/1, ByteSpan(b.data(), b.size()));
  EXPECT_EQ(agg::count(ByteSpan(wire.data(), wire.size())), 2u);

  std::vector<agg::Sub> subs;
  ASSERT_TRUE(
      agg::decode(ByteSpan(wire.data(), wire.size()), false, subs));
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_EQ(subs[0].tag, 7);
  EXPECT_EQ(subs[0].bytes, 5u);
  EXPECT_EQ(subs[1].tag, 9);
  EXPECT_EQ(subs[1].bytes, 7u);
  EXPECT_EQ(std::memcmp(wire.data() + subs[1].offset, "world!!", 7), 0);
}

TEST(TuneAgg, MergeCarriesSubsAcrossBuffers) {
  std::vector<std::byte> first;
  std::vector<std::byte> second;
  const auto a = bytes_of("aa");
  const auto b = bytes_of("bbb");
  agg::append(first, 1, 0, ByteSpan(a.data(), a.size()));
  agg::append(second, 2, 0, ByteSpan(b.data(), b.size()));
  agg::merge(first, ByteSpan(second.data(), second.size()));
  EXPECT_EQ(agg::count(ByteSpan(first.data(), first.size())), 2u);
  std::vector<agg::Sub> subs;
  ASSERT_TRUE(agg::decode(ByteSpan(first.data(), first.size()), false, subs));
  EXPECT_EQ(subs[1].tag, 2);
  EXPECT_EQ(subs[1].bytes, 3u);
}

TEST(TuneAgg, DecodeRejectsTruncatedWire) {
  std::vector<std::byte> wire;
  const auto a = bytes_of("payload");
  agg::append(wire, 3, 0, ByteSpan(a.data(), a.size()));
  wire.pop_back();
  std::vector<agg::Sub> subs;
  EXPECT_FALSE(agg::decode(ByteSpan(wire.data(), wire.size()), false, subs));
}

TEST(TuneAgg, MailboxSplitsAggregateIntoOrderedSubEnvelopes) {
  std::vector<std::byte> wire;
  const auto a = bytes_of("first");
  const auto b = bytes_of("second");
  agg::append(wire, 2000, 5, ByteSpan(a.data(), a.size()));
  agg::append(wire, 2000, 5, ByteSpan(b.data(), b.size()));

  cid::rt::Mailbox mailbox;
  cid::rt::Envelope envelope;
  envelope.src = 3;
  envelope.tag = 0;
  envelope.channel = cid::rt::Channel::Internal;
  envelope.context = agg::kContext;
  envelope.available_at = 1.5;
  envelope.payload = cid::rt::Payload(std::vector<std::byte>(wire));
  mailbox.push(std::move(envelope));
  EXPECT_EQ(mailbox.size(), 2u);

  cid::rt::MatchKey key;
  key.channel = cid::rt::Channel::MpiPointToPoint;
  key.context = 5;
  key.src = 3;
  key.tag = 2000;
  auto one = mailbox.try_extract(key);
  auto two = mailbox.try_extract(key);
  ASSERT_TRUE(one.has_value());
  ASSERT_TRUE(two.has_value());
  // Same per-source order as unbatched pushes, same metadata and payloads.
  EXPECT_LT(one->seq, two->seq);
  EXPECT_DOUBLE_EQ(one->available_at, 1.5);
  ASSERT_EQ(one->payload.span().size(), 5u);
  EXPECT_EQ(std::memcmp(one->payload.span().data(), "first", 5), 0);
  ASSERT_EQ(two->payload.span().size(), 6u);
  EXPECT_EQ(std::memcmp(two->payload.span().data(), "second", 6), 0);
  EXPECT_FALSE(one->faulted);
}

TEST(TuneAgg, TombstoneFansOutFaultedPayloadlessSubs) {
  std::vector<std::byte> wire;
  const auto a = bytes_of("first");
  const auto b = bytes_of("second");
  agg::append(wire, 2000, 5, ByteSpan(a.data(), a.size()));
  agg::append(wire, 2001, 5, ByteSpan(b.data(), b.size()));

  // What World::deliver does to a dropped aggregate: keep headers, drop
  // payload bytes, mark faulted.
  cid::rt::Envelope envelope;
  envelope.src = 1;
  envelope.channel = cid::rt::Channel::Internal;
  envelope.context = agg::kContext;
  envelope.payload =
      cid::rt::Payload(agg::tombstone(ByteSpan(wire.data(), wire.size())));
  envelope.faulted = true;

  cid::rt::Mailbox mailbox;
  mailbox.push(std::move(envelope));
  EXPECT_EQ(mailbox.size(), 2u);

  cid::rt::MatchKey key;
  key.channel = cid::rt::Channel::MpiPointToPoint;
  key.context = 5;
  key.src = 1;
  key.tag = 2000;
  key.faults = cid::rt::FaultFilter::Faulted;
  auto one = mailbox.try_extract(key);
  ASSERT_TRUE(one.has_value());
  EXPECT_TRUE(one->faulted);
  EXPECT_EQ(one->payload.span().size(), 0u);  // tombstones carry no bytes
  key.tag = 2001;
  auto two = mailbox.try_extract(key);
  ASSERT_TRUE(two.has_value());
  EXPECT_TRUE(two->faulted);
}

// ---------------------------------------------------------------------------
// End to end: record -> on preserves data and stats semantics; off stays
// byte-identical even after tuner activity in the same process.
// ---------------------------------------------------------------------------

struct RingRun {
  std::map<int, CommStats> stats;
  std::map<int, std::vector<double>> received;
  std::vector<double> clocks;
};

/// A one-shot region (no max_comm_iter, so no persistent requests): each
/// rank ships four small messages to its right neighbour.
RingRun run_small_message_ring(int nranks) {
  RingRun out;
  std::mutex mu;
  auto result = cid::rt::run(
      nranks, MachineModel::cray_xk7_gemini(), [&](RankCtx& ctx) {
        double s0[4], s1[4], s2[4], s3[4];
        double r0[4] = {}, r1[4] = {}, r2[4] = {}, r3[4] = {};
        for (int i = 0; i < 4; ++i) {
          s0[i] = ctx.rank() * 100.0 + i;
          s1[i] = ctx.rank() * 100.0 + 10 + i;
          s2[i] = ctx.rank() * 100.0 + 20 + i;
          s3[i] = ctx.rank() * 100.0 + 30 + i;
        }
        comm_parameters(
            Clauses()
                .sender("(rank-1+nprocs)%nprocs")
                .receiver("(rank+1)%nprocs"),
            [&](Region& region) {
              region.p2p(Clauses().sbuf(buf(s0)).rbuf(buf(r0)));
              region.p2p(Clauses().sbuf(buf(s1)).rbuf(buf(r1)));
              region.p2p(Clauses().sbuf(buf(s2)).rbuf(buf(r2)));
              region.p2p(Clauses().sbuf(buf(s3)).rbuf(buf(r3)));
            });
        std::lock_guard<std::mutex> lock(mu);
        auto& got = out.received[ctx.rank()];
        got.insert(got.end(), r0, r0 + 4);
        got.insert(got.end(), r1, r1 + 4);
        got.insert(got.end(), r2, r2 + 4);
        got.insert(got.end(), r3, r3 + 4);
        out.stats[ctx.rank()] = comm_stats();
      });
  out.clocks = result.final_clocks;
  return out;
}

void expect_ring_data(const RingRun& run, int nranks) {
  for (const auto& [rank, got] : run.received) {
    const int prev = (rank - 1 + nranks) % nranks;
    ASSERT_EQ(got.size(), 16u);
    for (int m = 0; m < 4; ++m) {
      for (int i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(m * 4 + i)],
                         prev * 100.0 + m * 10 + i)
            << "rank " << rank << " message " << m << " element " << i;
      }
    }
  }
}

TEST(TuneEndToEnd, RecordThenOnAggregatesWithoutChangingSemantics) {
  constexpr int kRanks = 4;
  EnvGuard profile_env("CID_TUNE_PROFILE", nullptr);

  RingRun untuned;
  {
    EnvGuard env("CID_TUNE", nullptr);
    untuned = run_small_message_ring(kRanks);
  }
  expect_ring_data(untuned, kRanks);

  {
    EnvGuard env("CID_TUNE", "record");
    const RingRun recorded = run_small_message_ring(kRanks);
    expect_ring_data(recorded, kRanks);
  }
  // The record run populated per-site size statistics.
  EXPECT_FALSE(tune::Tuner::global().profile().empty());

  RingRun tuned;
  {
    EnvGuard env("CID_TUNE", "on");
    tuned = run_small_message_ring(kRanks);
  }
  expect_ring_data(tuned, kRanks);

  std::uint64_t untuned_retired = 0;
  std::uint64_t tuned_retired = 0;
  for (int r = 0; r < kRanks; ++r) {
    const CommStats& u = untuned.stats.at(r);
    const CommStats& t = tuned.stats.at(r);
    // Semantic invariants: same logical messages and bytes through the same
    // lowering, same directive/region counts.
    EXPECT_EQ(u.mpi2_messages, t.mpi2_messages);
    EXPECT_EQ(u.mpi2_bytes, t.mpi2_bytes);
    EXPECT_EQ(u.p2p_directives, t.p2p_directives);
    EXPECT_EQ(u.regions, t.regions);
    untuned_retired += u.requests_retired;
    tuned_retired += t.requests_retired;
  }
  // Mechanical proof that aggregation engaged: the four per-destination
  // sends collapsed into one wire envelope, so fewer requests were retired.
  EXPECT_LT(tuned_retired, untuned_retired);
}

TEST(TuneEndToEnd, OffIsByteIdenticalAfterTunerActivity) {
  constexpr int kRanks = 4;
  EnvGuard profile_env("CID_TUNE_PROFILE", nullptr);

  RingRun before;
  {
    EnvGuard env("CID_TUNE", nullptr);
    before = run_small_message_ring(kRanks);
  }
  // Record and tune in between...
  {
    EnvGuard env("CID_TUNE", "record");
    run_small_message_ring(kRanks);
  }
  {
    EnvGuard env("CID_TUNE", "on");
    run_small_message_ring(kRanks);
  }
  // ...then off again: stats and every rank's final virtual clock must be
  // bit-identical to the pristine run.
  RingRun after;
  {
    EnvGuard env("CID_TUNE", "off");
    after = run_small_message_ring(kRanks);
  }
  EXPECT_EQ(before.stats, after.stats);
  ASSERT_EQ(before.clocks.size(), after.clocks.size());
  for (std::size_t r = 0; r < before.clocks.size(); ++r) {
    EXPECT_EQ(before.clocks[r], after.clocks[r]) << "rank " << r;
  }
}

TEST(TuneEndToEnd, RecordPersistsProfileToFile) {
  const std::string path = ::testing::TempDir() + "cid_tune_profile.json";
  std::remove(path.c_str());
  {
    EnvGuard env("CID_TUNE", "record");
    EnvGuard profile_env("CID_TUNE_PROFILE", path.c_str());
    run_small_message_ring(2);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "profile file not written: " << path;
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = tune::Profile::parse(text.str());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_FALSE(parsed.value().empty());
  for (const auto& [site, p] : parsed.value().sites) {
    EXPECT_NE(site.find("tune_test.cpp:"), std::string::npos) << site;
    EXPECT_GT(p.messages, 0u);
    EXPECT_EQ(p.mean_bytes, 32.0);  // 4 doubles per message
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Flat-copy: a non-contiguous layout shipped as whole extents when the
// profile says the memcpy wins; pack-plan holes stay untouched either way.
// ---------------------------------------------------------------------------

using Padded = TuneTestPadded;

struct PaddedRun {
  std::map<int, std::vector<Padded>> received;
  std::map<int, CommStats> stats;
};

PaddedRun run_padded_exchange(int nranks) {
  PaddedRun out;
  std::mutex mu;
  cid::rt::run(nranks, MachineModel::cray_xk7_gemini(), [&](RankCtx& ctx) {
    Padded send[3];
    Padded recv[3];
    // Poison the receive buffer: the pack plan (and the flat-copy scatter)
    // must only write the reflected fields, never the padding holes.
    std::memset(recv, 0xAB, sizeof(recv));
    for (int k = 0; k < 3; ++k) {
      send[k].c = static_cast<char>('a' + ctx.rank() + k);
      send[k].d = ctx.rank() * 2.5 + k;
      send[k].i = ctx.rank() * 1000 + k;
    }
    comm_parameters(Clauses()
                        .sender("(rank-1+nprocs)%nprocs")
                        .receiver("(rank+1)%nprocs")
                        .count(3),
                    [&](Region& region) {
                      region.p2p(Clauses()
                                     .sbuf(buf(&send[0], "send"))
                                     .rbuf(buf(&recv[0], "recv")));
                    });
    std::lock_guard<std::mutex> lock(mu);
    out.received[ctx.rank()] = {recv[0], recv[1], recv[2]};
    out.stats[ctx.rank()] = comm_stats();
  });
  return out;
}

void expect_padded_data(const PaddedRun& run, int nranks) {
  for (const auto& [rank, got] : run.received) {
    const int prev = (rank - 1 + nranks) % nranks;
    ASSERT_EQ(got.size(), 3u);
    for (int k = 0; k < 3; ++k) {
      const auto& e = got[static_cast<std::size_t>(k)];
      EXPECT_EQ(e.c, static_cast<char>('a' + prev + k));
      EXPECT_DOUBLE_EQ(e.d, prev * 2.5 + k);
      EXPECT_EQ(e.i, prev * 1000 + k);
      // The padding holes kept their poison bytes.
      const auto* raw = reinterpret_cast<const unsigned char*>(&e);
      for (std::size_t off = 1; off < 8; ++off) {
        EXPECT_EQ(raw[off], 0xABu) << "hole byte " << off << " overwritten";
      }
    }
  }
}

TEST(TuneEndToEnd, FlatCopyPreservesFieldsAndHoles) {
  constexpr int kRanks = 3;
  EnvGuard profile_env("CID_TUNE_PROFILE", nullptr);

  // Record once so the profile learns the real site keys (and calibrates
  // the copy rates for the non-contiguous layout).
  {
    EnvGuard env("CID_TUNE", "record");
    const PaddedRun recorded = run_padded_exchange(kRanks);
    expect_padded_data(recorded, kRanks);
  }
  bool calibrated = false;
  for (const auto& [site, p] : tune::Tuner::global().profile().sites) {
    if (p.plan_ns_per_byte > 0.0 && p.flat_ns_per_byte > 0.0) {
      calibrated = true;
    }
  }
  EXPECT_TRUE(calibrated) << "record run never calibrated the copy rates";

  // Force the flat-copy branch deterministically: overwrite the measured
  // rates so the crossover always picks flat, and inflate max_bytes so
  // aggregation (which would otherwise win) stays off.
  tune::Profile forced = tune::Tuner::global().profile();
  for (auto& [site, p] : forced.sites) {
    p.plan_ns_per_byte = 10.0;
    p.flat_ns_per_byte = 0.1;
    p.max_bytes = 1e9;
  }
  tune::Tuner::global().set_profile(std::move(forced));

  PaddedRun tuned;
  {
    EnvGuard env("CID_TUNE", "on");
    tuned = run_padded_exchange(kRanks);
  }
  expect_padded_data(tuned, kRanks);

  PaddedRun untuned;
  {
    EnvGuard env("CID_TUNE", nullptr);
    untuned = run_padded_exchange(kRanks);
  }
  for (int r = 0; r < kRanks; ++r) {
    // Same logical traffic either way.
    EXPECT_EQ(untuned.stats.at(r).mpi2_messages,
              tuned.stats.at(r).mpi2_messages);
  }
}

// ---------------------------------------------------------------------------
// Reliability RTT recording feeds the timeout derivation.
// ---------------------------------------------------------------------------

TEST(TuneEndToEnd, RecordCapturesReliabilityRtts) {
  EnvGuard profile_env("CID_TUNE_PROFILE", nullptr);
  EnvGuard env("CID_TUNE", "record");
  cid::rt::run(2, MachineModel::cray_xk7_gemini(), [&](RankCtx& ctx) {
    double s[2] = {ctx.rank() + 0.5, ctx.rank() + 1.5};
    double r[2] = {};
    comm_parameters(Clauses()
                        .sender("(rank-1+nprocs)%nprocs")
                        .receiver("(rank+1)%nprocs")
                        .reliability(100, 4),
                    [&](Region& region) {
                      region.p2p(Clauses().sbuf(buf(s)).rbuf(buf(r)));
                    });
  });
  bool saw_rtt = false;
  for (const auto& [site, p] : tune::Tuner::global().profile().sites) {
    if (p.rtt_p99 > 0.0 && p.min_timeout > 0.0) {
      saw_rtt = true;
      // The derived timeout can only tighten the clause value.
      EXPECT_LE(tune::tuned_timeout(&p, p.min_timeout), p.min_timeout);
    }
  }
  EXPECT_TRUE(saw_rtt) << "reliable record run captured no RTT samples";
}

}  // namespace
