// Tests for miniMPI collectives: correctness across rank counts (including
// non-powers of two and non-zero roots), virtual-time tree behaviour, and
// subcommunicator operation.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"

namespace {

using cid::rt::RankCtx;
using cid::simnet::MachineModel;
namespace mpi = cid::mpi;

void spmd(int nranks, const cid::rt::RankFn& fn) {
  cid::rt::run(nranks, MachineModel::zero(), fn);
}

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, BcastFromZero) {
  spmd(GetParam(), [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    std::vector<double> data(5, ctx.rank() == 0 ? 0.0 : -1.0);
    if (ctx.rank() == 0) std::iota(data.begin(), data.end(), 10.0);
    mpi::bcast(world, data.data(), data.size(), 0);
    for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(data[i], 10.0 + i);
  });
}

TEST_P(CollectiveSizes, BcastFromNonzeroRoot) {
  const int nranks = GetParam();
  const int root = nranks - 1;
  spmd(nranks, [root](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    int value = ctx.rank() == root ? 777 : 0;
    mpi::bcast(world, &value, 1, root);
    EXPECT_EQ(value, 777);
  });
}

TEST_P(CollectiveSizes, GatherCollectsBlocks) {
  const int nranks = GetParam();
  spmd(nranks, [nranks](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    std::array<int, 2> mine{ctx.rank() * 2, ctx.rank() * 2 + 1};
    std::vector<int> all(2 * static_cast<std::size_t>(nranks), -1);
    mpi::gather(world, mine.data(), 2, all.data(), 0);
    if (ctx.rank() == 0) {
      for (int i = 0; i < 2 * nranks; ++i) EXPECT_EQ(all[i], i);
    }
  });
}

TEST_P(CollectiveSizes, ScatterDistributesBlocks) {
  const int nranks = GetParam();
  spmd(nranks, [nranks](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    std::vector<double> source;
    if (ctx.rank() == 1 % nranks) {
      source.resize(3 * static_cast<std::size_t>(nranks));
      std::iota(source.begin(), source.end(), 0.0);
    }
    std::array<double, 3> mine{};
    mpi::scatter(world, source.data(), 3, mine.data(), 1 % nranks);
    for (int i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(mine[static_cast<std::size_t>(i)],
                       3.0 * ctx.rank() + i);
    }
  });
}

TEST_P(CollectiveSizes, AllgatherEveryoneSeesEverything) {
  const int nranks = GetParam();
  spmd(nranks, [nranks](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    int mine = 100 + ctx.rank();
    std::vector<int> all(static_cast<std::size_t>(nranks), -1);
    mpi::allgather(world, &mine, 1, all.data());
    for (int r = 0; r < nranks; ++r) EXPECT_EQ(all[r], 100 + r);
  });
}

TEST_P(CollectiveSizes, AlltoallTransposesBlocks) {
  const int nranks = GetParam();
  spmd(nranks, [nranks](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    std::vector<int> send(static_cast<std::size_t>(nranks));
    std::vector<int> recv(static_cast<std::size_t>(nranks), -1);
    for (int j = 0; j < nranks; ++j) send[j] = ctx.rank() * 1000 + j;
    mpi::alltoall(world, send.data(), 1, recv.data());
    for (int j = 0; j < nranks; ++j) {
      EXPECT_EQ(recv[j], j * 1000 + ctx.rank());
    }
  });
}

TEST_P(CollectiveSizes, ReduceSum) {
  const int nranks = GetParam();
  spmd(nranks, [nranks](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    std::array<double, 2> mine{1.0, static_cast<double>(ctx.rank())};
    std::array<double, 2> total{};
    mpi::reduce(world, mine.data(), total.data(), 2, mpi::ReduceOp::Sum, 0);
    if (ctx.rank() == 0) {
      EXPECT_DOUBLE_EQ(total[0], nranks);
      EXPECT_DOUBLE_EQ(total[1], nranks * (nranks - 1) / 2.0);
    }
  });
}

TEST_P(CollectiveSizes, AllreduceMinMax) {
  const int nranks = GetParam();
  spmd(nranks, [nranks](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    int mine = ctx.rank() * 7 % 13;
    int lowest = 0;
    mpi::allreduce(world, &mine, &lowest, 1, mpi::ReduceOp::Min);
    int expected_min = INT32_MAX;
    for (int r = 0; r < nranks; ++r) {
      expected_min = std::min(expected_min, r * 7 % 13);
    }
    EXPECT_EQ(lowest, expected_min);

    int highest = 0;
    mpi::allreduce(world, &mine, &highest, 1, mpi::ReduceOp::Max);
    int expected_max = INT32_MIN;
    for (int r = 0; r < nranks; ++r) {
      expected_max = std::max(expected_max, r * 7 % 13);
    }
    EXPECT_EQ(highest, expected_max);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST(Collectives, ReduceProd) {
  spmd(4, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    double mine = ctx.rank() + 1.0;
    double prod = 0.0;
    mpi::reduce(world, &mine, &prod, 1, mpi::ReduceOp::Prod, 0);
    if (ctx.rank() == 0) { EXPECT_DOUBLE_EQ(prod, 24.0); }
  });
}

TEST(Collectives, WorkOnSubcommunicators) {
  spmd(8, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    auto sub = world.split(ctx.rank() % 2, ctx.rank());
    int value = sub.rank() == 0 ? (ctx.rank() % 2 + 1) * 50 : 0;
    mpi::bcast(sub, &value, 1, 0);
    EXPECT_EQ(value, (ctx.rank() % 2 + 1) * 50);

    int sum = 0;
    int one = 1;
    mpi::allreduce(sub, &one, &sum, 1, mpi::ReduceOp::Sum);
    EXPECT_EQ(sum, 4);
  });
}

TEST(Collectives, BcastTimeScalesLogarithmically) {
  const auto model = MachineModel::cray_xk7_gemini();
  auto run_bcast = [&](int nranks) {
    auto result = cid::rt::run(nranks, model, [](RankCtx&) {
      double payload[16] = {};
      mpi::bcast(mpi::Comm::world(), payload, 16, 0);
    });
    return result.makespan();
  };
  const double t4 = run_bcast(4);
  const double t16 = run_bcast(16);
  const double t64 = run_bcast(64);
  // Binomial tree: doubling the depth adds about one message hop per level,
  // so going 4 -> 16 -> 64 adds roughly constant increments, far from the
  // linear growth a flat bcast would show.
  EXPECT_LT(t64, 4.0 * t4);
  EXPECT_NEAR(t16 - t4, t64 - t16, (t64 - t16) * 0.6 + 1e-9);
}

TEST(Collectives, ConsecutiveCollectivesDoNotInterfere) {
  spmd(6, [](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    for (int round = 0; round < 5; ++round) {
      int value = ctx.rank() == 0 ? round * 11 : -1;
      mpi::bcast(world, &value, 1, 0);
      EXPECT_EQ(value, round * 11);
      int sum = 0;
      int contribution = value + ctx.rank();
      mpi::allreduce(world, &contribution, &sum, 1, mpi::ReduceOp::Sum);
      EXPECT_EQ(sum, 6 * round * 11 + 15);
    }
  });
}

}  // namespace
