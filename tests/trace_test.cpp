// Tests for the directive trace layer: event capture, virtual timestamps,
// determinism, and Chrome JSON export.
#include <gtest/gtest.h>

#include <sstream>

#include "core/core.hpp"
#include "core/trace.hpp"
#include "rt/runtime.hpp"

namespace {

using namespace cid::core;
using cid::rt::RankCtx;
using cid::simnet::MachineModel;

std::vector<TraceEvent> run_traced(int nranks, const MachineModel& model,
                                   const cid::rt::RankFn& fn) {
  TraceCollector trace;
  cid::rt::run(nranks, model, [&](RankCtx& ctx) {
    trace.attach(ctx);
    fn(ctx);
  });
  return trace.events();
}

int count_kind(const std::vector<TraceEvent>& events, TraceEventKind kind) {
  int n = 0;
  for (const auto& e : events) {
    if (e.kind == kind) ++n;
  }
  return n;
}

TEST(Trace, DisabledByDefault) {
  // Without attach(), directives record nothing and cost nothing extra.
  TraceCollector trace;
  cid::rt::run(2, MachineModel::zero(), [](RankCtx&) {
    double a[2] = {}, b[2] = {};
    comm_p2p(Clauses()
                 .sender(0)
                 .receiver(1)
                 .sendwhen("rank==0")
                 .receivewhen("rank==1")
                 .sbuf(buf(a))
                 .rbuf(buf(b)));
  });
  EXPECT_TRUE(trace.events().empty());
}

TEST(Trace, RecordsP2PSpansPerRank) {
  auto events = run_traced(3, MachineModel::zero(), [](RankCtx&) {
    double a[4] = {}, b[4] = {};
    comm_p2p(Clauses()
                 .sender("(rank-1+nprocs)%nprocs")
                 .receiver("(rank+1)%nprocs")
                 .sbuf(buf(a))
                 .rbuf(buf(b)));
  });
  EXPECT_EQ(count_kind(events, TraceEventKind::P2PDirective), 3);
  for (const auto& e : events) {
    EXPECT_GE(e.end, e.begin);
    EXPECT_FALSE(e.site.empty());
    if (e.kind == TraceEventKind::P2PDirective) {
      EXPECT_EQ(e.messages, 1u);  // one send injected per rank (ring)
      EXPECT_EQ(e.bytes, 4 * sizeof(double));
    }
  }
}

TEST(Trace, RegionAndSyncSpans) {
  auto events = run_traced(2, MachineModel::cray_xk7_gemini(), [](RankCtx&) {
    std::vector<double> data(12);
    comm_parameters(
        Clauses().sender(0).receiver(1).sendwhen("rank==0")
            .receivewhen("rank==1").count(3).max_comm_iter(4),
        [&](Region& region) {
          for (int p = 0; p < 4; ++p) {
            region.p2p(
                Clauses().sbuf(buf_n(&data[3 * p], 3)).rbuf(
                    buf_n(&data[3 * p], 3)));
          }
        });
  });
  EXPECT_EQ(count_kind(events, TraceEventKind::RegionDirective), 2);
  EXPECT_EQ(count_kind(events, TraceEventKind::P2PDirective), 8);
  // One consolidated sync per rank, nested inside the region span.
  EXPECT_EQ(count_kind(events, TraceEventKind::Synchronization), 2);
  for (const auto& region_event : events) {
    if (region_event.kind != TraceEventKind::RegionDirective) continue;
    for (const auto& inner : events) {
      if (inner.rank != region_event.rank ||
          inner.kind == TraceEventKind::RegionDirective) {
        continue;
      }
      EXPECT_GE(inner.begin, region_event.begin);
      EXPECT_LE(inner.end, region_event.end);
    }
  }
}

TEST(Trace, OverlapSpanRecorded) {
  auto events = run_traced(2, MachineModel::cray_xk7_gemini(), [](RankCtx& ctx) {
    double a[2] = {}, b[2] = {};
    comm_p2p(Clauses()
                 .sender(0)
                 .receiver(1)
                 .sendwhen("rank==0")
                 .receivewhen("rank==1")
                 .sbuf(buf(a))
                 .rbuf(buf(b)),
             [&] { ctx.charge_compute(25e-6); });
  });
  ASSERT_EQ(count_kind(events, TraceEventKind::Overlap), 2);
  for (const auto& e : events) {
    if (e.kind == TraceEventKind::Overlap) {
      EXPECT_NEAR(e.end - e.begin, 25e-6, 1e-9);
    }
  }
}

TEST(Trace, CollectiveSpanRecorded) {
  auto events = run_traced(4, MachineModel::zero(), [](RankCtx&) {
    double s[4] = {}, r[4] = {};
    comm_collective(
        Clauses().pattern(Pattern::AllToAll).count(1).sbuf(buf(s)).rbuf(
            buf(r)));
  });
  EXPECT_EQ(count_kind(events, TraceEventKind::CollectiveDirective), 4);
}

TEST(Trace, DeterministicAcrossRuns) {
  auto run_once = [] {
    return run_traced(4, MachineModel::cray_xk7_gemini(), [](RankCtx&) {
      double a[8] = {}, b[8] = {};
      for (int lap = 0; lap < 3; ++lap) {
        comm_p2p(Clauses()
                     .sender("(rank-1+nprocs)%nprocs")
                     .receiver("(rank+1)%nprocs")
                     .sbuf(buf(a))
                     .rbuf(buf(b)));
      }
    });
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].rank, second[i].rank);
    EXPECT_DOUBLE_EQ(first[i].begin, second[i].begin);
    EXPECT_DOUBLE_EQ(first[i].end, second[i].end);
    EXPECT_EQ(first[i].bytes, second[i].bytes);
  }
}

TEST(Trace, ChromeJsonIsWellFormedEnough) {
  TraceCollector trace;
  cid::rt::run(2, MachineModel::zero(), [&](RankCtx& ctx) {
    trace.attach(ctx);
    double a[2] = {}, b[2] = {};
    comm_p2p(Clauses()
                 .sender(0)
                 .receiver(1)
                 .sendwhen("rank==0")
                 .receivewhen("rank==1")
                 .sbuf(buf(a))
                 .rbuf(buf(b)));
  });
  std::ostringstream out;
  trace.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(json.find(R"("cat":"comm_p2p")"), std::string::npos);
  EXPECT_NE(json.find(R"("tid":1)"), std::string::npos);
  // Balanced braces (cheap structural check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Trace, ClearDropsEvents) {
  TraceCollector trace;
  cid::rt::run(1, MachineModel::zero(), [&](RankCtx& ctx) {
    trace.attach(ctx);
    double a[1] = {}, b[1] = {};
    comm_p2p(Clauses().sender(0).receiver(0).count(1).sbuf(buf(a)).rbuf(
        buf(b)));
  });
  EXPECT_FALSE(trace.events().empty());
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
}

}  // namespace
