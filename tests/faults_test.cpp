// Tests for cid::faults (the deterministic fault-injection network layer)
// and the reliability(timeout, max_retries) region option built on top of
// it. The acceptance scenarios of the subsystem:
//  - a 5%-drop FaultPlan over the WL-LSMS spin scatter completes with the
//    correct data via retransmissions;
//  - with retries exhausted the region degrades gracefully: it terminates
//    (no deadlock) and the DeliveryReport names exactly the lost pairs;
//  - at zero faults the reliable lowering costs within 1% of the plain one.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "core/core.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"
#include "wllsms/comm_directive.hpp"
#include "wllsms/driver.hpp"

namespace {

using namespace cid::core;
using cid::faults::FaultKind;
using cid::faults::FaultPlan;
using cid::faults::FaultRun;
using cid::faults::FaultSpec;
using cid::faults::run_with_faults;
using cid::rt::RankCtx;
using cid::simnet::MachineModel;
using cid::wllsms::EvecReliability;
using cid::wllsms::set_evec_directive;

// ---------------------------------------------------------------------------
// FaultPlan: a pure, seeded function from message identity to fate
// ---------------------------------------------------------------------------

TEST(FaultPlan, SameSeedSameDecisions) {
  const FaultSpec spec = [] {
    FaultSpec s;
    s.drop_rate = 0.05;
    s.duplicate_rate = 0.05;
    s.delay_rate = 0.1;
    s.stall_rate = 0.02;
    return s;
  }();
  const FaultPlan a(0xfeedULL, spec);
  const FaultPlan b(0xfeedULL, spec);
  for (int src = 0; src < 4; ++src) {
    for (int dst = 0; dst < 4; ++dst) {
      for (std::uint64_t salt = 0; salt < 256; ++salt) {
        EXPECT_EQ(a.decide(src, dst, salt), b.decide(src, dst, salt));
      }
    }
  }
}

TEST(FaultPlan, DifferentSeedsDiffer) {
  const FaultSpec spec = FaultSpec::drops(0.5);
  const FaultPlan a(1, spec);
  const FaultPlan b(2, spec);
  int differing = 0;
  for (std::uint64_t salt = 0; salt < 512; ++salt) {
    if (a.decide(0, 1, salt) != b.decide(0, 1, salt)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultPlan, RatesApproximatelyRealized) {
  const FaultPlan plan(0x5eedULL, FaultSpec::drops(0.05));
  int drops = 0;
  const int n = 20000;
  for (int salt = 0; salt < n; ++salt) {
    if (plan.decide(0, 1, static_cast<std::uint64_t>(salt)) ==
        FaultKind::Drop) {
      ++drops;
    }
  }
  const double rate = static_cast<double>(drops) / n;
  EXPECT_NEAR(rate, 0.05, 0.01);
}

TEST(FaultPlan, InactiveWithoutRates) {
  EXPECT_FALSE(FaultPlan().active());
  EXPECT_TRUE(FaultPlan(1, FaultSpec::drops(0.01)).active());
}

// ---------------------------------------------------------------------------
// Injector: faults that do not lose payloads keep plain MPI correct
// ---------------------------------------------------------------------------

TEST(FaultInjector, DelaysAndStallsPreservePlainDelivery) {
  FaultSpec spec;
  spec.delay_rate = 0.3;
  spec.stall_rate = 0.2;
  const FaultPlan plan(0xabcULL, spec);
  FaultRun run = run_with_faults(
      4, MachineModel::cray_xk7_gemini(), plan, [](RankCtx& ctx) {
        auto world = cid::mpi::Comm::world();
        const int right = (ctx.rank() + 1) % ctx.nranks();
        const int left = (ctx.rank() + ctx.nranks() - 1) % ctx.nranks();
        for (int round = 0; round < 16; ++round) {
          int out = ctx.rank() * 100 + round;
          int in = -1;
          auto rreq = cid::mpi::irecv(world, &in, 1, left, round);
          auto sreq = cid::mpi::isend(world, &out, 1, right, round);
          cid::mpi::wait(sreq);
          cid::mpi::wait(rreq);
          EXPECT_EQ(in, left * 100 + round);
        }
      });
  EXPECT_GT(run.stats.messages, 0u);
  EXPECT_GT(run.stats.delays + run.stats.stalls, 0u);
  EXPECT_EQ(run.stats.drops, 0u);
}

TEST(FaultInjector, SameSeedSameStatsAndMakespan) {
  FaultSpec spec;
  spec.drop_rate = 0.05;
  spec.duplicate_rate = 0.05;
  spec.delay_rate = 0.1;
  const FaultPlan plan(0x77ULL, spec);
  auto scatter = [](RankCtx& ctx) {
    const std::vector<int> members = {0, 1, 2, 3};
    const int num_types = 8;
    std::vector<double> ev;
    if (ctx.rank() == 0) {
      ev.resize(3 * num_types);
      for (std::size_t i = 0; i < ev.size(); ++i) {
        ev[i] = static_cast<double>(i) * 0.5;
      }
    }
    std::vector<double> local(3 * num_types, -1.0);
    set_evec_directive(members, ev, num_types, local.data(), Target::Mpi2Side,
                       {}, {true, /*timeout_us=*/100, /*max_retries=*/8});
  };
  FaultRun first = run_with_faults(4, MachineModel::cray_xk7_gemini(), plan,
                                   scatter);
  FaultRun second = run_with_faults(4, MachineModel::cray_xk7_gemini(), plan,
                                    scatter);
  EXPECT_EQ(first.stats, second.stats);
  EXPECT_EQ(first.result.final_clocks, second.result.final_clocks);
}

// ---------------------------------------------------------------------------
// Reliability protocol: the spin scatter under drops
// ---------------------------------------------------------------------------

/// Shared collector for per-rank protocol outcomes.
struct RankOutcomes {
  std::mutex mu;
  std::map<int, CommStats> stats;
  std::map<int, DeliveryReport> reports;

  void record(int rank) {
    std::lock_guard<std::mutex> lock(mu);
    stats[rank] = comm_stats();
    reports[rank] = delivery_report();
  }

  std::uint64_t total(std::uint64_t CommStats::* field) {
    std::lock_guard<std::mutex> lock(mu);
    std::uint64_t sum = 0;
    for (const auto& [rank, s] : stats) sum += s.*field;
    return sum;
  }
};

TEST(Reliability, SpinScatterSurvivesFivePercentDrops) {
  const int nranks = 5;
  const int num_types = 16;
  const int steps = 3;
  const FaultPlan plan(0x51aULL, FaultSpec::drops(0.05));
  RankOutcomes outcomes;

  run_with_faults(
      nranks, MachineModel::cray_xk7_gemini(), plan, [&](RankCtx& ctx) {
        const std::vector<int> members = {0, 1, 2, 3, 4};
        std::vector<double> local(3 * num_types, -1.0);
        for (int step = 0; step < steps; ++step) {
          std::vector<double> ev;
          if (ctx.rank() == 0) {
            ev.resize(3 * num_types);
            for (std::size_t i = 0; i < ev.size(); ++i) {
              ev[i] = static_cast<double>(step * 1000) +
                      static_cast<double>(i) * 0.25;
            }
          }
          set_evec_directive(members, ev, num_types, local.data(),
                             Target::Mpi2Side, {},
                             {true, /*timeout_us=*/100, /*max_retries=*/10});
        }
        // Every owned type carries the last step's payload, exactly.
        const int size = static_cast<int>(members.size());
        for (int p = 0; p < num_types; ++p) {
          const int owner = members[static_cast<std::size_t>(
              1 + p % (size - 1))];
          if (ctx.rank() != owner) continue;
          for (int c = 0; c < 3; ++c) {
            EXPECT_DOUBLE_EQ(local[static_cast<std::size_t>(3 * p + c)],
                             (steps - 1) * 1000 + (3 * p + c) * 0.25)
                << "type " << p << " component " << c;
          }
        }
        EXPECT_TRUE(delivery_report().all_delivered())
            << delivery_report().to_string();
        outcomes.record(ctx.rank());
      });

  // The 5% plan did hit the protocol, and the protocol recovered everything.
  EXPECT_GT(outcomes.total(&CommStats::retransmits), 0u);
  EXPECT_GT(outcomes.total(&CommStats::timeouts), 0u);
  EXPECT_EQ(outcomes.total(&CommStats::undelivered_pairs), 0u);
  EXPECT_EQ(outcomes.total(&CommStats::reliable_transfers),
            static_cast<std::uint64_t>(num_types * steps));
}

TEST(Reliability, DuplicatesAreSuppressed) {
  const int num_types = 12;
  FaultSpec spec;
  spec.duplicate_rate = 0.4;
  const FaultPlan plan(0xd0bULL, spec);
  RankOutcomes outcomes;

  run_with_faults(
      3, MachineModel::cray_xk7_gemini(), plan, [&](RankCtx& ctx) {
        const std::vector<int> members = {0, 1, 2};
        std::vector<double> ev;
        if (ctx.rank() == 0) {
          ev.resize(3 * num_types);
          for (std::size_t i = 0; i < ev.size(); ++i) {
            ev[i] = static_cast<double>(i);
          }
        }
        std::vector<double> local(3 * num_types, -1.0);
        set_evec_directive(members, ev, num_types, local.data(),
                           Target::Mpi2Side, {},
                           {true, /*timeout_us=*/100, /*max_retries=*/4});
        for (int p = 0; p < num_types; ++p) {
          const int owner = members[static_cast<std::size_t>(1 + p % 2)];
          if (ctx.rank() != owner) continue;
          for (int c = 0; c < 3; ++c) {
            EXPECT_DOUBLE_EQ(local[static_cast<std::size_t>(3 * p + c)],
                             static_cast<double>(3 * p + c));
          }
        }
        EXPECT_TRUE(delivery_report().all_delivered());
        outcomes.record(ctx.rank());
      });

  EXPECT_GT(outcomes.total(&CommStats::duplicates_suppressed), 0u);
  EXPECT_EQ(outcomes.total(&CommStats::undelivered_pairs), 0u);
}

TEST(Reliability, ExhaustedRetriesReportLostPairsWithoutDeadlock) {
  const int num_types = 10;
  const FaultPlan plan(0xbadULL, FaultSpec::drops(0.6));
  RankOutcomes outcomes;
  std::mutex wrong_mu;
  std::map<int, int> wrong_types_by_rank;

  run_with_faults(
      3, MachineModel::cray_xk7_gemini(), plan, [&](RankCtx& ctx) {
        const std::vector<int> members = {0, 1, 2};
        std::vector<double> ev;
        if (ctx.rank() == 0) {
          ev.resize(3 * num_types);
          for (std::size_t i = 0; i < ev.size(); ++i) {
            ev[i] = static_cast<double>(i) + 1.0;
          }
        }
        std::vector<double> local(3 * num_types, -1.0);
        // A drop rate this high with one retry loses pairs almost surely;
        // the directive must still return (graceful degradation, no hang).
        set_evec_directive(members, ev, num_types, local.data(),
                           Target::Mpi2Side, {},
                           {true, /*timeout_us=*/50, /*max_retries=*/1});

        // A type is either delivered exactly or named in this rank's report.
        int wrong = 0;
        for (int p = 0; p < num_types; ++p) {
          const int owner = members[static_cast<std::size_t>(1 + p % 2)];
          if (ctx.rank() != owner) continue;
          const bool exact =
              local[static_cast<std::size_t>(3 * p)] ==
                  static_cast<double>(3 * p) + 1.0 &&
              local[static_cast<std::size_t>(3 * p + 1)] ==
                  static_cast<double>(3 * p + 1) + 1.0 &&
              local[static_cast<std::size_t>(3 * p + 2)] ==
                  static_cast<double>(3 * p + 2) + 1.0;
          if (!exact) ++wrong;
        }
        int receiver_losses = 0;
        for (const LostPair& pair : delivery_report().lost) {
          EXPECT_LE(pair.attempts, 2);  // max_retries 1 = at most 2 sends
          EXPECT_FALSE(pair.site.empty());
          if (!pair.sender_side) ++receiver_losses;
        }
        // Every corrupted (undelivered) type is accounted for by a
        // receiver-side loss record; a sender-side-only loss (final ack
        // dropped) leaves the data intact.
        EXPECT_LE(wrong, receiver_losses);
        {
          std::lock_guard<std::mutex> lock(wrong_mu);
          wrong_types_by_rank[ctx.rank()] = wrong;
        }
        outcomes.record(ctx.rank());
      });

  EXPECT_GT(outcomes.total(&CommStats::undelivered_pairs), 0u);
  bool any_named = false;
  {
    std::lock_guard<std::mutex> lock(outcomes.mu);
    for (const auto& [rank, report] : outcomes.reports) {
      if (!report.all_delivered()) any_named = true;
    }
  }
  EXPECT_TRUE(any_named);
}

// ---------------------------------------------------------------------------
// Zero-fault overhead: the reliable lowering must cost what the plain one
// does (within 1%) when nothing goes wrong
// ---------------------------------------------------------------------------

TEST(Reliability, ZeroFaultOverheadWithinOnePercent) {
  cid::wllsms::ExperimentConfig config;
  config.nprocs = 33;
  config.num_lsms = 16;
  config.natoms = 16;
  config.wl_steps = 4;

  const double plain = cid::wllsms::run_spin_scatter(
      config, cid::wllsms::Variant::DirectiveMpi);

  config.reliability = EvecReliability{true, /*timeout_us=*/200,
                                       /*max_retries=*/5};
  const double reliable = cid::wllsms::run_spin_scatter(
      config, cid::wllsms::Variant::DirectiveMpi);

  ASSERT_GT(plain, 0.0);
  EXPECT_LE(std::abs(reliable - plain) / plain, 0.01)
      << "plain=" << plain << " reliable=" << reliable;
}

// ---------------------------------------------------------------------------
// Clause validation wiring
// ---------------------------------------------------------------------------

TEST(Reliability, RejectsNonMpi2SideTargets) {
  cid::rt::run(2, MachineModel::zero(), [](RankCtx&) {
    double a[3] = {1, 2, 3};
    double b[3] = {};
    EXPECT_THROW(
        comm_parameters(Clauses()
                            .sender(0)
                            .receiver(1)
                            .sendwhen("rank==0")
                            .receivewhen("rank==1")
                            .count(3)
                            .target(Target::Shmem)
                            .reliability(100, 3),
                        [&](Region& region) {
                          region.p2p(Clauses().sbuf(buf(a)).rbuf(buf(b)));
                        }),
        cid::CidError);
  });
}

}  // namespace
