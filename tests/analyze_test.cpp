// Golden tests for cid::analyze — the static directive verifier behind
// `cidt check`. Each pass family gets a minimal triggering source and pins
// the diagnostic ID (and, for the flagship findings, the exact message), so
// the IDs documented in docs/ANALYSIS.md cannot drift silently. The shipped
// examples are swept at the end: they must stay free of diagnostics because
// CI gates on `cidt check examples/*.cpp`.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.hpp"
#include "analyze/diagnostics.hpp"
#include "analyze/source_model.hpp"
#include "obs/trace_read.hpp"
#include "translate/scan.hpp"

namespace {

using cid::analyze::Diagnostic;
using cid::analyze::Report;
using cid::analyze::Severity;

Report analyze(std::string_view source) {
  return cid::analyze::analyze_source(source);
}

std::vector<std::string> ids_of(const Report& report) {
  std::vector<std::string> ids;
  ids.reserve(report.diagnostics.size());
  for (const auto& d : report.diagnostics) ids.push_back(d.id);
  return ids;
}

bool has(const Report& report, std::string_view id) {
  const auto ids = ids_of(report);
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

const Diagnostic& find(const Report& report, std::string_view id) {
  for (const auto& d : report.diagnostics) {
    if (d.id == id) return d;
  }
  static const Diagnostic missing;
  EXPECT_TRUE(false) << "diagnostic " << id << " not reported";
  return missing;
}

std::string render(const Report& report) {
  std::ostringstream out;
  cid::analyze::print_human({"test.cpp", report}, out);
  return out.str();
}

// --- clean programs ---------------------------------------------------------

TEST(Analyze, CleanRingProgramHasNoDiagnostics) {
  const Report report = analyze(R"(
double sb[8];
double rb[8];
int main() {
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(sb) rbuf(rb) count(8)
{ }
}
)");
  EXPECT_TRUE(report.clean()) << render(report);
  EXPECT_EQ(report.directives_checked, 1);
}

TEST(Analyze, PaperListing2GuardedEdgeExchangeIsClean) {
  // Listing 2's pattern: shift right, edge ranks guarded off.
  const Report report = analyze(R"(
double sb[4];
double rb[4];
int main() {
#pragma comm_parameters sender(rank-1) receiver(rank+1) sendwhen(rank<nprocs-1) receivewhen(rank>0)
{
#pragma comm_p2p sbuf(sb) rbuf(rb) count(4)
{ }
}
}
)");
  EXPECT_TRUE(report.clean()) << render(report);
  EXPECT_EQ(report.directives_checked, 2);
}

TEST(Analyze, SymbolicClausesProduceNoFalsePositives) {
  // prev/next/size are runtime values the analyzer cannot bind; the sweep
  // must skip silently rather than guess.
  const Report report = analyze(R"(
int main() {
#pragma comm_p2p sender(prev) receiver(next) sbuf(a) rbuf(b) count(size)
{ }
}
)");
  EXPECT_TRUE(report.clean()) << render(report);
}

TEST(Analyze, PragmasInStringsAndCommentsAreIgnored) {
  const Report report = analyze(R"(
// #pragma comm_p2p bogus(1)
const char* quoted = R"x(
#pragma comm_p2p sbuf(a)
)x";
int main() { return 0; }
)");
  EXPECT_TRUE(report.clean()) << render(report);
  EXPECT_EQ(report.directives_checked, 0);
}

// --- rank-symbolic match analysis -------------------------------------------

TEST(Analyze, UnmatchedGuardsStrandSendsAndReceives) {
  // Both guards select even ranks: every send targets an odd rank that
  // never posts the receive, and even receivers wait forever.
  const Report report = analyze(R"(
int main() {
#pragma comm_parameters sender(rank-1) receiver(rank+1) sendwhen(rank%2==0) receivewhen(rank%2==0)
{
#pragma comm_p2p sbuf(a) rbuf(b) count(1)
{ }
}
}
)");
  EXPECT_TRUE(has(report, "CID-M011")) << render(report);
  const Diagnostic& stranded = find(report, "CID-M011");
  EXPECT_EQ(stranded.severity, Severity::Warning);
  EXPECT_EQ(stranded.line, 5);
  EXPECT_EQ(stranded.message,
            "send posted by rank 0 to rank 1 at nprocs=2 has no matching "
            "receive: rank 1 does not satisfy receivewhen(rank%2==0) "
            "(swept nprocs 2..8)");
  const Diagnostic& orphan = find(report, "CID-M012");
  EXPECT_EQ(orphan.severity, Severity::Error);
}

TEST(Analyze, UnguardedEdgeRanksGoOutOfRange) {
  const Report report = analyze(R"(
int main() {
#pragma comm_p2p sender(rank-1) receiver(rank+1) sbuf(a) rbuf(b) count(1)
{ }
}
)");
  const Diagnostic& d = find(report, "CID-M010");
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_EQ(d.message,
            "receiver(rank+1) evaluates to 2 on sending rank 1 at nprocs=2, "
            "outside 0..1 (swept nprocs 2..8)");
}

TEST(Analyze, DeadDirectiveNeverFires) {
  const Report report = analyze(R"(
int main() {
#pragma comm_p2p sender(0) receiver(1) sendwhen(rank<0) receivewhen(rank<0) sbuf(a) rbuf(b)
{ }
}
)");
  const Diagnostic& d = find(report, "CID-S034");
  EXPECT_EQ(d.severity, Severity::Warning);
}

TEST(Analyze, EvaluationFailureInSweepWarns) {
  // receiver divides by zero on rank 1.
  const Report report = analyze(R"(
int main() {
#pragma comm_p2p sender(0) receiver(1/(rank-1)) sbuf(a) rbuf(b)
{ }
}
)");
  EXPECT_TRUE(has(report, "CID-M015")) << render(report);
}

TEST(Analyze, CollectiveRootOutOfRange) {
  const Report report = analyze(R"(
int main() {
#pragma comm_collective pattern(PATTERN_ONE_TO_MANY) root(nprocs) sbuf(a) rbuf(b) count(4)
{ }
}
)");
  EXPECT_TRUE(has(report, "CID-M010")) << render(report);
}

// --- count / extent checks --------------------------------------------------

TEST(Analyze, CountLargerThanDeclaredExtent) {
  const Report report = analyze(R"(
double rb[4];
int main() {
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(sb) rbuf(rb) count(8)
{ }
}
)");
  const Diagnostic& d = find(report, "CID-M014");
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_EQ(d.message,
            "count(8) transfers 8 element(s) but buffer 'rb' is declared "
            "with extent 4");
}

TEST(Analyze, InferredCountFromMismatchedExtentsWarns) {
  const Report report = analyze(R"(
double sb[8];
double rb[4];
int main() {
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(sb) rbuf(rb)
{ }
}
)");
  EXPECT_TRUE(has(report, "CID-M013")) << render(report);
}

TEST(Analyze, SbufRbufListLengthMismatch) {
  const Report report = analyze(R"(
int main() {
#pragma comm_p2p sender(0) receiver(1) sbuf(a, b) rbuf(c)
{ }
}
)");
  const Diagnostic& d = find(report, "CID-P006");
  EXPECT_EQ(d.message,
            "sbuf lists 2 buffer(s) but rbuf lists 1; paired send/receive "
            "buffers must agree in number");
}

TEST(Analyze, MissingRequiredClausesAfterInheritance) {
  const Report report = analyze(R"(
int main() {
#pragma comm_p2p sbuf(a) rbuf(b)
{ }
}
)");
  const Diagnostic& d = find(report, "CID-P005");
  EXPECT_EQ(d.message,
            "comm_p2p is missing required clause(s) after inheritance: "
            "sender, receiver");
}

// --- buffer race detection --------------------------------------------------

TEST(Analyze, RbufReusedWhileInFlight) {
  const Report report = analyze(R"(
double sb[8];
double rb[8];
int main() {
#pragma comm_parameters sender(rank-1) receiver(rank+1) sendwhen(rank<nprocs-1) receivewhen(rank>0)
{
#pragma comm_p2p sbuf(sb) rbuf(rb) count(4)
{ }
#pragma comm_p2p sbuf(sb) rbuf(rb) count(4)
{ }
}
}
)");
  const Diagnostic& d = find(report, "CID-B020");
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_EQ(d.line, 9);
  EXPECT_EQ(d.message,
            "rbuf(rb) is reused while the receive posted by the directive "
            "at line 7 is still in flight (rank 1 posts both at nprocs=2)");
}

TEST(Analyze, DisjointGuardsMakeRbufReuseSafe) {
  // The two receives land on different ranks; no rank posts both.
  const Report report = analyze(R"(
double sb[8];
double rb[8];
int main() {
#pragma comm_parameters sender(0) count(4)
{
#pragma comm_p2p receiver(1) sendwhen(rank==0) receivewhen(rank==1) sbuf(sb) rbuf(rb)
{ }
#pragma comm_p2p receiver(2) sendwhen(rank==0 && nprocs>2) receivewhen(rank==2) sbuf(sb) rbuf(rb)
{ }
}
}
)");
  EXPECT_FALSE(has(report, "CID-B020")) << render(report);
}

TEST(Analyze, SelfAliasedSendReceiveBuffers) {
  const Report report = analyze(R"(
double buf[8];
int main() {
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(buf) rbuf(buf) count(8)
{ }
}
)");
  const Diagnostic& d = find(report, "CID-B021");
  EXPECT_EQ(d.severity, Severity::Error);
}

TEST(Analyze, DisjointGuardsMakeSelfAliasSafe) {
  // The paper's transfer_atom pattern: same staging buffers on both sides,
  // but a rank either sends or receives, never both.
  const Report report = analyze(R"(
double stage[8];
int main() {
#pragma comm_p2p sender(0) receiver(1) sendwhen(rank==0) receivewhen(rank==1) sbuf(stage) rbuf(stage) count(8)
{ }
}
)");
  EXPECT_TRUE(report.clean()) << render(report);
}

TEST(Analyze, OverlapBlockTouchingInFlightRbuf) {
  const Report report = analyze(R"(
double sb[8];
double rb[8];
int main() {
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(sb) rbuf(rb) count(8)
{
  rb[0] = 1.0;
}
}
)");
  const Diagnostic& d = find(report, "CID-B022");
  EXPECT_EQ(d.severity, Severity::Warning);
}

TEST(Analyze, OverlapBlockReadingSbufIsFine) {
  const Report report = analyze(R"(
double sb[8];
double rb[8];
double acc;
int main() {
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(sb) rbuf(rb) count(8)
{
  acc += sb[0];
}
}
)");
  EXPECT_TRUE(report.clean()) << render(report);
}

TEST(Analyze, CodeBetweenRegionsTouchingDeferredBuffer) {
  const Report report = analyze(R"(
double sb[8];
double rb[8];
int main() {
#pragma comm_parameters sender(rank-1) receiver(rank+1) sendwhen(rank<nprocs-1) receivewhen(rank>0) place_sync(BEGIN_NEXT_PARAM_REGION)
{
#pragma comm_p2p sbuf(sb) rbuf(rb) count(8)
{ }
}
  rb[0] = 2.0;
#pragma comm_parameters sender(rank-1) receiver(rank+1) sendwhen(rank<nprocs-1) receivewhen(rank>0)
{
#pragma comm_p2p sbuf(sb) rbuf(sb) sendwhen(rank<0) receivewhen(rank<0) count(8)
{ }
}
}
)");
  EXPECT_TRUE(has(report, "CID-B023")) << render(report);
}

// --- synchronization placement ----------------------------------------------

TEST(Analyze, BeginNextWithoutFollowingRegion) {
  const Report report = analyze(R"(
double sb[8];
double rb[8];
int main() {
#pragma comm_parameters sender(rank-1) receiver(rank+1) sendwhen(rank<nprocs-1) receivewhen(rank>0) place_sync(BEGIN_NEXT_PARAM_REGION)
{
#pragma comm_p2p sbuf(sb) rbuf(rb) count(8)
{ }
}
}
)");
  const Diagnostic& d = find(report, "CID-S030");
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_EQ(d.line, 5);
  EXPECT_EQ(d.message,
            "place_sync(BEGIN_NEXT_PARAM_REGION) defers the consolidated "
            "sync to a following parameter region, but no region follows "
            "this one");
}

TEST(Analyze, EndAdjWithoutFollowingRegion) {
  const Report report = analyze(R"(
int main() {
#pragma comm_parameters sender(0) receiver(1) sendwhen(rank==0) receivewhen(rank==1) place_sync(END_ADJ_PARAM_REGIONS)
{
#pragma comm_p2p sbuf(a) rbuf(b) count(1)
{ }
}
}
)");
  EXPECT_TRUE(has(report, "CID-S031")) << render(report);
}

TEST(Analyze, DeferredSyncWithFollowingRegionIsClean) {
  const Report report = analyze(R"(
double sb[8];
double rb[8];
double sb2[8];
double rb2[8];
int main() {
#pragma comm_parameters sender(rank-1) receiver(rank+1) sendwhen(rank<nprocs-1) receivewhen(rank>0) place_sync(BEGIN_NEXT_PARAM_REGION)
{
#pragma comm_p2p sbuf(sb) rbuf(rb) count(8)
{ }
}
#pragma comm_parameters sender(rank-1) receiver(rank+1) sendwhen(rank<nprocs-1) receivewhen(rank>0)
{
#pragma comm_p2p sbuf(sb2) rbuf(rb2) count(8)
{ }
}
}
)");
  EXPECT_TRUE(report.clean()) << render(report);
}

TEST(Analyze, InvalidKeywordsAreReported) {
  const Report report = analyze(R"(
int main() {
#pragma comm_parameters sender(0) receiver(1) sendwhen(rank==0) receivewhen(rank==1) place_sync(SOMETIME) target(TARGET_COMM_CARRIER_PIGEON)
{
#pragma comm_p2p sbuf(a) rbuf(b) count(1)
{ }
}
}
)");
  int s032 = 0;
  for (const auto& d : report.diagnostics) {
    if (d.id == "CID-S032") ++s032;
  }
  EXPECT_EQ(s032, 2) << render(report);
}

TEST(Analyze, NonPositiveMaxCommIter) {
  const Report report = analyze(R"(
int main() {
#pragma comm_parameters sender(0) receiver(1) sendwhen(rank==0) receivewhen(rank==1) max_comm_iter(0)
{
#pragma comm_p2p sbuf(a) rbuf(b) count(1)
{ }
}
}
)");
  EXPECT_TRUE(has(report, "CID-S032")) << render(report);
}

TEST(Analyze, NestedMaxCommIterConflictWarns) {
  const Report report = analyze(R"(
int main() {
#pragma comm_parameters sender(0) receiver(1) sendwhen(rank==0) receivewhen(rank==1) max_comm_iter(4)
{
#pragma comm_parameters max_comm_iter(8)
{
#pragma comm_p2p sbuf(a) rbuf(b) count(1)
{ }
}
}
}
)");
  const Diagnostic& d = find(report, "CID-S033");
  EXPECT_EQ(d.severity, Severity::Warning);
}

TEST(Analyze, ReliabilityRequiresTwoSidedMpi) {
  const Report report = analyze(R"(
int main() {
#pragma comm_parameters sender(0) receiver(1) sendwhen(rank==0) receivewhen(rank==1) reliability(1000, 3) target(TARGET_COMM_SHMEM)
{
#pragma comm_p2p sbuf(a) rbuf(b) count(1)
{ }
}
}
)");
  EXPECT_TRUE(has(report, "CID-S035")) << render(report);
}

TEST(Analyze, ReliabilityAcceptsAutoTarget) {
  // target(TARGET_COMM_AUTO) is compatible with reliability: the runtime
  // tuner resolves auto to the two-sided lowering whenever the clause is
  // present (docs/TUNING.md).
  const Report report = analyze(R"(
int main() {
#pragma comm_parameters sender(0) receiver(1) sendwhen(rank==0) receivewhen(rank==1) reliability(1000, 3) target(TARGET_COMM_AUTO)
{
#pragma comm_p2p sbuf(a) rbuf(b) count(1)
{ }
}
}
)");
  EXPECT_FALSE(has(report, "CID-S035")) << render(report);
}

// --- reflection / type rules ------------------------------------------------

TEST(Analyze, CompositeWithPointerMember) {
  const Report report = analyze(R"(
struct Vec3 { double x, y, z; };
struct Particle { Vec3 pos; double* history; };
Particle psend;
Particle precv;
int main() {
#pragma comm_p2p sender(0) receiver(1) sendwhen(rank==0) receivewhen(rank==1) sbuf(psend) rbuf(precv) count(1)
{ }
}
)");
  const Diagnostic& pointer = find(report, "CID-T040");
  EXPECT_EQ(pointer.severity, Severity::Error);
  EXPECT_EQ(pointer.message,
            "buffer 'psend' has composite type 'Particle' whose member "
            "'history' is a pointer; reflection transfers raw bytes and "
            "cannot follow it");
  EXPECT_TRUE(has(report, "CID-T041")) << render(report);
  EXPECT_TRUE(has(report, "CID-T042")) << render(report);
}

TEST(Analyze, ReflectedFlatCompositeIsClean) {
  const Report report = analyze(R"(
struct Scalars { double energy; int count; };
CID_REFLECT_STRUCT(Scalars, energy, count);
Scalars ssend;
Scalars srecv;
int main() {
#pragma comm_p2p sender(0) receiver(1) sendwhen(rank==0) receivewhen(rank==1) sbuf(ssend) rbuf(srecv) count(1)
{ }
}
)");
  EXPECT_TRUE(report.clean()) << render(report);
}

// --- scanner issues ---------------------------------------------------------

TEST(Analyze, MalformedPragmaForwardsParserMessage) {
  const Report report = analyze("#pragma comm_p2p bogus(1)\n{ }\n");
  const Diagnostic& d = find(report, "CID-P001");
  EXPECT_EQ(d.message, "unknown clause 'bogus'");
  EXPECT_EQ(d.line, 1);
}

TEST(Analyze, DirectiveWithoutBody) {
  const Report report = analyze("#pragma comm_p2p sbuf(a) rbuf(b)\n");
  const Diagnostic& d = find(report, "CID-P002");
  EXPECT_EQ(d.message, "directive has no attached statement or block");
}

TEST(Analyze, UnbalancedBracesAfterDirective) {
  const Report report =
      analyze("#pragma comm_p2p sbuf(a) rbuf(b)\n{ int x = 0;\n");
  EXPECT_TRUE(has(report, "CID-P002")) << render(report);
}

TEST(Analyze, UnterminatedContinuation) {
  const Report report = analyze("#pragma comm_p2p sbuf(a) rbuf(b) \\");
  const Diagnostic& d = find(report, "CID-P004");
  EXPECT_EQ(d.message, "unterminated '\\' continuation in pragma");
}

TEST(Analyze, UnparseableClauseExpression) {
  const Report report = analyze(R"(
int main() {
#pragma comm_p2p sender(rank ++ 1) receiver(1) sbuf(a) rbuf(b)
{ }
}
)");
  EXPECT_TRUE(has(report, "CID-P003")) << render(report);
}

// --- report plumbing --------------------------------------------------------

TEST(Analyze, ReportSortsByPosition) {
  Report report;
  report.add("CID-M011", Severity::Warning, 9, 2, "later");
  report.add("CID-B020", Severity::Error, 3, 7, "earlier");
  report.add("CID-A000", Severity::Error, 3, 1, "first");
  report.sort();
  EXPECT_EQ(report.diagnostics[0].message, "first");
  EXPECT_EQ(report.diagnostics[1].message, "earlier");
  EXPECT_EQ(report.diagnostics[2].message, "later");
  EXPECT_EQ(report.errors(), 2);
  EXPECT_EQ(report.warnings(), 1);
}

TEST(Analyze, HumanRenderingIsCompilerStyle) {
  Report report;
  report.add("CID-B020", Severity::Error, 3, 7, "the message", "the hint");
  const std::string text = render(report);
  EXPECT_EQ(text,
            "test.cpp:3:7: error: [CID-B020] the message\n"
            "  hint: the hint\n");
}

TEST(Analyze, SymbolicClausesAreCountedAndReportedAsSkips) {
  // A symbolic sender (free variable `k`) is beyond the rank/nprocs model:
  // the matcher must skip the directive, say so, and count it so callers
  // (and `cidt check` output) can distinguish "proved clean" from "could
  // not look".
  const Report report = analyze(R"(
int k;
void f() {
#pragma comm_p2p sbuf(a) rbuf(b) count(1) receiver((rank+1)%nprocs) sender(k)
{ }
}
)");
  EXPECT_TRUE(report.diagnostics.empty()) << render(report);
  EXPECT_EQ(report.symbolic_skips, 1);

  const std::string text = render(report);
  EXPECT_NE(text.find("1 directive(s) skipped"), std::string::npos) << text;
  EXPECT_NE(text.find("symbolic clause"), std::string::npos) << text;
  EXPECT_NE(text.find("cidt explore"), std::string::npos) << text;
}

TEST(Analyze, ProvedCleanProgramReportsZeroSymbolicSkips) {
  const Report report = analyze(R"(
void f() {
#pragma comm_p2p sbuf(a) rbuf(b) count(1) receiver((rank+1)%nprocs) sender((rank+nprocs-1)%nprocs)
{ }
}
)");
  EXPECT_TRUE(report.clean()) << render(report);
  EXPECT_EQ(report.symbolic_skips, 0);
  // No skip note when nothing was skipped.
  EXPECT_EQ(render(report).find("skipped"), std::string::npos);
}

// --- JSON output ------------------------------------------------------------

TEST(AnalyzeJson, RoundTripsThroughSchema) {
  const Report report = analyze(R"(
int main() {
#pragma comm_parameters sender(rank-1) receiver(rank+1) sendwhen(rank%2==0) receivewhen(rank%2==0)
{
#pragma comm_p2p sbuf(a) rbuf(b) count(1)
{ }
}
}
)");
  ASSERT_FALSE(report.clean());
  const std::string json =
      cid::analyze::to_json({{"match.cpp", report}});

  auto parsed = cid::obs::parse_json(json);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const cid::obs::Json& doc = parsed.value();
  ASSERT_EQ(doc.kind, cid::obs::Json::Kind::Object);

  const auto* version = doc.find("cidlint");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->number, 1.0);

  const auto* files = doc.find("files");
  ASSERT_NE(files, nullptr);
  ASSERT_EQ(files->array.size(), 1u);
  const cid::obs::Json& file = files->array[0];
  EXPECT_EQ(file.find("path")->string, "match.cpp");
  EXPECT_EQ(static_cast<int>(file.find("directives")->number),
            report.directives_checked);

  const auto* diagnostics = file.find("diagnostics");
  ASSERT_NE(diagnostics, nullptr);
  ASSERT_EQ(diagnostics->array.size(), report.diagnostics.size());
  for (std::size_t i = 0; i < diagnostics->array.size(); ++i) {
    const cid::obs::Json& entry = diagnostics->array[i];
    const Diagnostic& expected = report.diagnostics[i];
    EXPECT_EQ(entry.find("id")->string, expected.id);
    EXPECT_EQ(entry.find("severity")->string,
              cid::analyze::severity_name(expected.severity));
    EXPECT_EQ(static_cast<int>(entry.find("line")->number), expected.line);
    EXPECT_EQ(static_cast<int>(entry.find("column")->number),
              expected.column);
    EXPECT_EQ(entry.find("message")->string, expected.message);
  }

  const auto* summary = doc.find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(static_cast<int>(summary->find("errors")->number),
            report.errors());
  EXPECT_EQ(static_cast<int>(summary->find("warnings")->number),
            report.warnings());
  EXPECT_EQ(static_cast<int>(summary->find("files")->number), 1);
}

TEST(AnalyzeJson, CarriesSymbolicSkipCounts) {
  const Report report = analyze(R"(
int k;
void f() {
#pragma comm_p2p sbuf(a) rbuf(b) count(1) receiver((rank+1)%nprocs) sender(k)
{ }
}
)");
  ASSERT_EQ(report.symbolic_skips, 1);
  const std::string json = cid::analyze::to_json({{"skip.cpp", report}});
  auto parsed = cid::obs::parse_json(json);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const auto& file = parsed.value().find("files")->array[0];
  EXPECT_EQ(static_cast<int>(file.find("symbolic_skips")->number), 1);
  const auto* summary = parsed.value().find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(static_cast<int>(summary->find("symbolic_skips")->number), 1);
}

TEST(AnalyzeJson, EscapesSpecialCharacters) {
  Report report;
  report.add("CID-X999", Severity::Error, 1, 1, "quote \" slash \\ tab \t");
  const std::string json = cid::analyze::to_json({{"a\"b.cpp", report}});
  auto parsed = cid::obs::parse_json(json);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const auto& file = parsed.value().find("files")->array[0];
  EXPECT_EQ(file.find("path")->string, "a\"b.cpp");
  EXPECT_EQ(file.find("diagnostics")->array[0].find("message")->string,
            "quote \" slash \\ tab \t");
}

// --- the declaration model --------------------------------------------------

TEST(SourceModel, RecoversConstantExtents) {
  const auto model = cid::analyze::SourceModel::scan(
      "double buf[4];\nint other[16];\nchar* p;\ndouble dyn[n];\n");
  ASSERT_EQ(model.array_extents.count("buf"), 1u);
  EXPECT_EQ(model.array_extents.at("buf"), 4);
  EXPECT_EQ(model.array_extents.at("other"), 16);
  EXPECT_EQ(model.array_extents.count("dyn"), 0u);
  EXPECT_EQ(model.extent_of("buf").value_or(-1), 4);
  EXPECT_FALSE(model.extent_of("&buf[2]").has_value());
}

TEST(SourceModel, ConflictingExtentsBecomeUnknown) {
  const auto model = cid::analyze::SourceModel::scan(
      "void f() { double buf[4]; }\nvoid g() { double buf[8]; }\n");
  EXPECT_EQ(model.array_extents.count("buf"), 0u);
}

TEST(SourceModel, ParsesStructFields) {
  const auto model = cid::analyze::SourceModel::scan(R"(
struct Particle {
  double x, y;
  double* history;
  int ids[4];
};
)");
  ASSERT_EQ(model.structs.count("Particle"), 1u);
  const auto& decl = model.structs.at("Particle");
  ASSERT_EQ(decl.fields.size(), 4u);
  EXPECT_EQ(decl.fields[0].name, "x");
  EXPECT_EQ(decl.fields[1].name, "y");
  EXPECT_FALSE(decl.fields[1].is_pointer);
  EXPECT_EQ(decl.fields[2].name, "history");
  EXPECT_TRUE(decl.fields[2].is_pointer);
  EXPECT_EQ(decl.fields[3].name, "ids");
  EXPECT_TRUE(decl.fields[3].is_array);
  EXPECT_FALSE(decl.reflected);
}

TEST(SourceModel, ReflectRegistrationMarksStruct) {
  const auto model = cid::analyze::SourceModel::scan(
      "struct S { int a; };\nCID_REFLECT_STRUCT(S, a);\n");
  EXPECT_TRUE(model.structs.at("S").reflected);
}

TEST(SourceModel, BufferBaseIdentifier) {
  EXPECT_EQ(cid::analyze::buffer_base_identifier("buf"), "buf");
  EXPECT_EQ(cid::analyze::buffer_base_identifier("&ev[3*p]"), "ev");
  EXPECT_EQ(cid::analyze::buffer_base_identifier("stage.vr"), "stage");
  EXPECT_EQ(cid::analyze::buffer_base_identifier("(&x[0])"), "x");
  EXPECT_EQ(cid::analyze::buffer_base_identifier("42"), "");
}

// --- the directive scanner --------------------------------------------------

TEST(ScanDirectives, BuildsNestedTree) {
  const auto tree = cid::translate::scan_directives(R"(
#pragma comm_parameters sender(0) receiver(1) sendwhen(rank==0) receivewhen(rank==1)
{
#pragma comm_p2p sbuf(a) rbuf(b) count(1)
{ }
#pragma comm_p2p sbuf(c) rbuf(d) count(1)
{ }
}
)");
  EXPECT_TRUE(tree.issues.empty());
  ASSERT_EQ(tree.roots.size(), 1u);
  EXPECT_EQ(tree.roots[0].directive.kind,
            cid::core::DirectiveKind::CommParameters);
  EXPECT_EQ(tree.roots[0].line, 2);
  ASSERT_EQ(tree.roots[0].children.size(), 2u);
  EXPECT_EQ(tree.roots[0].children[1].line, 6);
}

TEST(ScanDirectives, RegionDirectlyWrappingDirective) {
  // Listing 3's shape: comm_parameters followed by a loop... but also the
  // bare form where the region's body IS the next directive.
  const auto tree = cid::translate::scan_directives(R"(
#pragma comm_parameters sender(0) receiver(1) sendwhen(rank==0) receivewhen(rank==1)
#pragma comm_p2p sbuf(a) rbuf(b) count(1)
{ }
)");
  EXPECT_TRUE(tree.issues.empty());
  ASSERT_EQ(tree.roots.size(), 1u);
  ASSERT_EQ(tree.roots[0].children.size(), 1u);
}

TEST(ScanDirectives, ContinuationLinesJoin) {
  const auto tree = cid::translate::scan_directives(
      "#pragma comm_p2p sender(0) receiver(1) \\\n"
      "    sbuf(a) rbuf(b) count(1)\n"
      "{ }\n");
  EXPECT_TRUE(tree.issues.empty());
  ASSERT_EQ(tree.roots.size(), 1u);
  EXPECT_TRUE(tree.roots[0].pragma_continued);
  EXPECT_NE(tree.roots[0].directive.find("count"), nullptr);
}

// --- shipped sources must stay clean ----------------------------------------

TEST(AnalyzeShipped, ExamplesAndWllsmsAreDiagnosticFree) {
  const std::vector<std::string> paths = {
      "examples/collective_demo.cpp", "examples/evenodd_groups.cpp",
      "examples/halo2d.cpp",          "examples/pipeline.cpp",
      "examples/quickstart.cpp",      "examples/translate_demo.cpp",
      "examples/wllsms_demo.cpp",     "src/wllsms/comm_directive.cpp",
  };
  for (const std::string& relative : paths) {
    const std::string path = std::string(CID_SOURCE_DIR) + "/" + relative;
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const Report report = analyze(buffer.str());
    EXPECT_TRUE(report.clean())
        << relative << " has diagnostics:\n"
        << render(report);
  }
}

}  // namespace
