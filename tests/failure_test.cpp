// Failure-injection tests: a rank that throws mid-communication must poison
// the world so every other rank unwinds (no deadlock), the original
// exception must surface, and subsequent SPMD runs in the same process must
// start clean.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/core.hpp"
#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"
#include "shmem/shmem.hpp"

namespace {

using namespace cid::core;
using cid::rt::RankCtx;
using cid::simnet::MachineModel;
namespace mpi = cid::mpi;

struct Boom : std::runtime_error {
  Boom() : std::runtime_error("injected failure") {}
};

TEST(FailureInjection, ThrowWhilePeersBlockOnRecv) {
  EXPECT_THROW(
      cid::rt::run(4, MachineModel::zero(),
                   [](RankCtx& ctx) {
                     if (ctx.rank() == 0) throw Boom{};
                     int never = 0;
                     mpi::recv(mpi::Comm::world(), &never, 1, 0, 0);
                   }),
      Boom);
}

TEST(FailureInjection, ThrowWhilePeersBlockOnWait) {
  EXPECT_THROW(
      cid::rt::run(3, MachineModel::zero(),
                   [](RankCtx& ctx) {
                     auto world = mpi::Comm::world();
                     if (ctx.rank() == 2) throw Boom{};
                     int never = 0;
                     auto req = mpi::irecv(world, &never, 1, 2, 0);
                     mpi::wait(req);
                   }),
      Boom);
}

TEST(FailureInjection, ThrowWhilePeersBlockOnBarrier) {
  EXPECT_THROW(cid::rt::run(4, MachineModel::zero(),
                            [](RankCtx& ctx) {
                              if (ctx.rank() == 1) throw Boom{};
                              ctx.barrier();
                            }),
               Boom);
}

TEST(FailureInjection, ThrowWhilePeersBlockOnCommBarrier) {
  EXPECT_THROW(cid::rt::run(4, MachineModel::zero(),
                            [](RankCtx& ctx) {
                              auto world = mpi::Comm::world();
                              if (ctx.rank() == 3) throw Boom{};
                              world.barrier();
                            }),
               Boom);
}

TEST(FailureInjection, ThrowWhilePeersBlockInSplit) {
  EXPECT_THROW(cid::rt::run(4, MachineModel::zero(),
                            [](RankCtx& ctx) {
                              if (ctx.rank() == 0) throw Boom{};
                              auto world = mpi::Comm::world();
                              (void)world.split(0, ctx.rank());
                            }),
               Boom);
}

TEST(FailureInjection, ThrowWhilePeersBlockInShmemWait) {
  EXPECT_THROW(
      cid::rt::run(2, MachineModel::zero(),
                   [](RankCtx& ctx) {
                     namespace shmem = cid::shmem;
                     auto* flag = shmem::malloc_of<std::uint64_t>(1);
                     if (ctx.rank() == 0) throw Boom{};
                     shmem::wait_until(flag, shmem::Cmp::Ge, 1);
                   }),
      Boom);
}

TEST(FailureInjection, ThrowWhilePeersBlockInWinFence) {
  EXPECT_THROW(
      cid::rt::run(3, MachineModel::zero(),
                   [](RankCtx& ctx) {
                     double base[4] = {};
                     auto world = mpi::Comm::world();
                     auto win = mpi::Win::create(world, base, sizeof(base));
                     win.fence();
                     if (ctx.rank() == 1) throw Boom{};
                     double value = 1.25;
                     if (ctx.rank() == 0) {
                       win.put(&value, 1,
                               mpi::Datatype::basic(mpi::BasicType::Double),
                               /*target_rank=*/2, /*target_disp=*/0);
                     }
                     // Collective: blocked peers must unwind, not deadlock.
                     win.fence();
                   }),
      Boom);
}

TEST(FailureInjection, ThrowWhilePeersBlockInWinCreate) {
  EXPECT_THROW(
      cid::rt::run(3, MachineModel::zero(),
                   [](RankCtx& ctx) {
                     double base[2] = {};
                     if (ctx.rank() == 2) throw Boom{};
                     auto world = mpi::Comm::world();
                     (void)mpi::Win::create(world, base, sizeof(base));
                   }),
      Boom);
}

TEST(FailureInjection, ThrowWhilePeersBlockInOneSidedDirective) {
  // The one-sided lowering parks peers in a deferred Win_fence at the region
  // end; a rank failing mid-region must release them.
  EXPECT_THROW(
      cid::rt::run(3, MachineModel::zero(),
                   [](RankCtx& ctx) {
                     namespace shmem = cid::shmem;
                     auto* a = shmem::malloc_of<double>(2);
                     auto* b = shmem::malloc_of<double>(2);
                     comm_parameters(
                         Clauses()
                             .sender(0)
                             .receiver(1)
                             .sendwhen("rank==0")
                             .receivewhen("rank==1")
                             .count(2)
                             .target(Target::Mpi1Side),
                         [&](Region& region) {
                           region.p2p(Clauses()
                                          .sbuf(buf_n(a, 2, "a"))
                                          .rbuf(buf_n(b, 2, "b")));
                           if (ctx.rank() == 2) throw Boom{};
                         });
                   }),
      Boom);
}

TEST(FailureInjection, ThrowWhilePeersBlockInShmemTimedWait) {
  // The timed variant must also observe the poisoned world, not sit out its
  // virtual deadline forever.
  EXPECT_THROW(
      cid::rt::run(2, MachineModel::zero(),
                   [](RankCtx& ctx) {
                     namespace shmem = cid::shmem;
                     auto* flag = shmem::malloc_of<std::uint64_t>(1);
                     if (ctx.rank() == 1) throw Boom{};
                     (void)shmem::wait_until_for(flag, shmem::Cmp::Ge, 1,
                                                 /*timeout=*/1.0);
                   }),
      Boom);
}

TEST(FailureInjection, ThrowWhilePeersBlockInReliableEpoch) {
  // The receiver dies before the region: the sender blocks in the
  // reliability protocol's event loop waiting for an ack that can never
  // arrive, and must unwind when the world is poisoned.
  EXPECT_THROW(
      cid::rt::run(2, MachineModel::zero(),
                   [](RankCtx& ctx) {
                     double a[2] = {0.5, 1.5}, b[2] = {};
                     if (ctx.rank() == 1) throw Boom{};
                     comm_parameters(
                         Clauses()
                             .sender(0)
                             .receiver(1)
                             .sendwhen("rank==0")
                             .receivewhen("rank==1")
                             .count(2)
                             .reliability(100, 3),
                         [&](Region& region) {
                           region.p2p(Clauses().sbuf(buf(a)).rbuf(buf(b)));
                         });
                   }),
      Boom);
}

TEST(FailureInjection, ThrowWhilePeersBlockInCollective) {
  EXPECT_THROW(
      cid::rt::run(5, MachineModel::zero(),
                   [](RankCtx& ctx) {
                     auto world = mpi::Comm::world();
                     if (ctx.rank() == 4) throw Boom{};
                     double value = 0.0;
                     mpi::bcast(world, &value, 1, 0);
                   }),
      Boom);
}

TEST(FailureInjection, ThrowInsideDirectiveRegionUnwinds) {
  EXPECT_THROW(
      cid::rt::run(3, MachineModel::zero(),
                   [](RankCtx& ctx) {
                     double a[2] = {}, b[2] = {};
                     comm_parameters(
                         Clauses().sender(0).receiver(1).sendwhen("rank==0")
                             .receivewhen("rank==1"),
                         [&](Region& region) {
                           region.p2p(Clauses().sbuf(buf(a)).rbuf(buf(b)));
                           if (ctx.rank() == 2) throw Boom{};
                           region.p2p(Clauses().sbuf(buf(a)).rbuf(buf(b)));
                         });
                     // Unreached on rank 2; the others must unwind when
                     // waiting for messages that can no longer arrive.
                   }),
      Boom);
}

TEST(FailureInjection, ThrowInsideOverlapBlock) {
  EXPECT_THROW(
      cid::rt::run(2, MachineModel::zero(),
                   [](RankCtx& ctx) {
                     double a[2] = {}, b[2] = {};
                     comm_p2p(Clauses()
                                  .sender(0)
                                  .receiver(1)
                                  .sendwhen("rank==0")
                                  .receivewhen("rank==1")
                                  .sbuf(buf(a))
                                  .rbuf(buf(b)),
                              [&] {
                                if (ctx.rank() == 1) throw Boom{};
                              });
                   }),
      Boom);
}

TEST(FailureInjection, FirstExceptionWins) {
  // Several ranks throw different exceptions; exactly one surfaces and the
  // run terminates (which one is scheduling-dependent, but it must be one
  // of the injected types).
  try {
    cid::rt::run(4, MachineModel::zero(), [](RankCtx& ctx) {
      if (ctx.rank() % 2 == 0) throw Boom{};
      throw std::logic_error("other failure");
    });
    FAIL() << "run() must rethrow";
  } catch (const Boom&) {
    SUCCEED();
  } catch (const std::logic_error&) {
    SUCCEED();
  }
}

TEST(FailureInjection, WorldIsCleanAfterFailure) {
  EXPECT_THROW(cid::rt::run(3, MachineModel::zero(),
                            [](RankCtx& ctx) {
                              if (ctx.rank() == 0) throw Boom{};
                              ctx.barrier();
                            }),
               Boom);
  // A fresh run right after the failure works normally.
  cid::rt::run(3, MachineModel::zero(), [](RankCtx& ctx) {
    double out[2] = {ctx.rank() + 0.5, ctx.rank() + 1.5};
    double in[2] = {};
    comm_p2p(Clauses()
                 .sender("(rank-1+nprocs)%nprocs")
                 .receiver("(rank+1)%nprocs")
                 .sbuf(buf(out))
                 .rbuf(buf(in)));
    const int prev = (ctx.rank() - 1 + ctx.nranks()) % ctx.nranks();
    EXPECT_DOUBLE_EQ(in[0], prev + 0.5);
  });
}

TEST(FailureInjection, CidErrorFromClauseValidationPropagates) {
  try {
    cid::rt::run(2, MachineModel::zero(), [](RankCtx&) {
      double a[2] = {}, b[2] = {};
      // Missing sender/receiver: InvalidClause from every rank.
      comm_p2p(Clauses().sbuf(buf(a)).rbuf(buf(b)));
    });
    FAIL() << "must throw";
  } catch (const cid::CidError& error) {
    EXPECT_EQ(error.code(), cid::ErrorCode::InvalidClause);
  }
}

TEST(FailureInjection, RepeatedFailuresDoNotLeakWorlds) {
  for (int i = 0; i < 10; ++i) {
    EXPECT_THROW(cid::rt::run(4, MachineModel::zero(),
                              [i](RankCtx& ctx) {
                                if (ctx.rank() == i % 4) throw Boom{};
                                ctx.barrier();
                              }),
                 Boom);
  }
  // Still functional.
  auto result = cid::rt::run(4, MachineModel::zero(),
                             [](RankCtx& ctx) { ctx.barrier(); });
  EXPECT_EQ(result.final_clocks.size(), 4u);
}

}  // namespace
