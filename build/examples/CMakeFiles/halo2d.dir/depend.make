# Empty dependencies file for halo2d.
# This may be replaced when dependencies are built.
