file(REMOVE_RECURSE
  "CMakeFiles/halo2d.dir/halo2d.cpp.o"
  "CMakeFiles/halo2d.dir/halo2d.cpp.o.d"
  "halo2d"
  "halo2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
