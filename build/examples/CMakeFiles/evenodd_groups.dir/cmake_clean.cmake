file(REMOVE_RECURSE
  "CMakeFiles/evenodd_groups.dir/evenodd_groups.cpp.o"
  "CMakeFiles/evenodd_groups.dir/evenodd_groups.cpp.o.d"
  "evenodd_groups"
  "evenodd_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evenodd_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
