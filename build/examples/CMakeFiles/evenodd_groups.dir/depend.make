# Empty dependencies file for evenodd_groups.
# This may be replaced when dependencies are built.
