file(REMOVE_RECURSE
  "CMakeFiles/translate_demo.dir/translate_demo.cpp.o"
  "CMakeFiles/translate_demo.dir/translate_demo.cpp.o.d"
  "translate_demo"
  "translate_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
