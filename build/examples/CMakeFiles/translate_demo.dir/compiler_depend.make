# Empty compiler generated dependencies file for translate_demo.
# This may be replaced when dependencies are built.
