# Empty dependencies file for wllsms_demo.
# This may be replaced when dependencies are built.
