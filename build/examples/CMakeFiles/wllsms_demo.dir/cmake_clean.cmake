file(REMOVE_RECURSE
  "CMakeFiles/wllsms_demo.dir/wllsms_demo.cpp.o"
  "CMakeFiles/wllsms_demo.dir/wllsms_demo.cpp.o.d"
  "wllsms_demo"
  "wllsms_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wllsms_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
