# Empty compiler generated dependencies file for collective_demo.
# This may be replaced when dependencies are built.
