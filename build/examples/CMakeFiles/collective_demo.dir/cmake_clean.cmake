file(REMOVE_RECURSE
  "CMakeFiles/collective_demo.dir/collective_demo.cpp.o"
  "CMakeFiles/collective_demo.dir/collective_demo.cpp.o.d"
  "collective_demo"
  "collective_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collective_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
