
#include <cstdio>
#include <cstdlib>
#include "rt/runtime.hpp"
#include "mpi/mpi.hpp"
#include "shmem/shmem.hpp"
#include "translate/runtime.hpp"

int main() {
  auto result = cid::rt::run(4, [](cid::rt::RankCtx& ctx) {
    const int rank = ctx.rank();
    const int nprocs = ctx.nranks();
    int prev = (rank - 1 + nprocs) % nprocs;
    int next = (rank + 1) % nprocs;
    double* buf2 = cid::shmem::malloc_of<double>(4);
    double buf1[4];
    for (int i = 0; i < 4; ++i) { buf1[i] = rank + i * 0.25; buf2[i] = -1; }
    ctx.barrier();

{ /* cid-translate: comm_p2p 1 */
  ::cid::shmem::putmem(::cid::trt::data_ptr(buf2), ::cid::trt::data_ptr(buf1), static_cast<std::size_t>(4) * ::cid::trt::element_size(buf1), (next));
::cid::shmem::barrier_all();
}


    for (int i = 0; i < 4; ++i) {
      if (buf2[i] != prev + i * 0.25) std::exit(1);
    }
  });
  std::printf("SHMEM-OK\n");
  (void)result;
  return 0;
}
