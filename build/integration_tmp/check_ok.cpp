
#include <cstdio>
#include <cstdlib>
#include <vector>
#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"
#include "shmem/shmem.hpp"
#include "translate/runtime.hpp"

int main() {
  auto result = cid::rt::run(6, [](cid::rt::RankCtx& ctx) {
    const int rank = ctx.rank();
    const int nprocs = ctx.nranks();
    int prev = (rank - 1 + nprocs) % nprocs;
    int next = (rank + 1) % nprocs;
    double buf1[4];
    double buf2[4] = {0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) buf1[i] = rank * 10.0 + i;

#pragma comm_p2p sender(prev) receiver(next) sbuf(buf1) rbuf(buf2)
    { }

    for (int i = 0; i < 4; ++i) {
      if (buf2[i] != prev * 10.0 + i) {
        std::fprintf(stderr, "rank %d: BAD DATA\n", rank);
        std::exit(1);
      }
    }
  });
  std::printf("RING-OK %.3f\n", result.makespan() * 1e6);
  return 0;
}
