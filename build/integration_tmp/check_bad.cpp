#pragma comm_p2p sbuf(a) rbuf(b)
{ }
