
#include <cstdio>
#include <cstdlib>
#include <vector>
#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"
#include "shmem/shmem.hpp"
#include "translate/runtime.hpp"

int main() {
  auto result = cid::rt::run(6, [](cid::rt::RankCtx& ctx) {
    const int rank = ctx.rank();
    const int nprocs = ctx.nranks();
    int prev = (rank - 1 + nprocs) % nprocs;
    int next = (rank + 1) % nprocs;
    double buf1[4];
    double buf2[4] = {0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) buf1[i] = rank * 10.0 + i;

{ /* cid-translate: comm_p2p 1 */
std::vector<::cid::mpi::Request> cid_reqs_1;
auto cid_comm_1 = ::cid::mpi::Comm::world();
  cid_reqs_1.push_back(::cid::mpi::irecv(cid_comm_1, ::cid::trt::data_ptr(buf2), static_cast<std::size_t>(::cid::trt::smallest_extent(buf1, buf2)), ::cid::trt::datatype_of_expr(buf2), (prev), 2000));
  cid_reqs_1.push_back(::cid::mpi::isend(cid_comm_1, ::cid::trt::data_ptr(buf1), static_cast<std::size_t>(::cid::trt::smallest_extent(buf1, buf2)), ::cid::trt::datatype_of_expr(buf1), (next), 2000));
::cid::mpi::waitall(cid_reqs_1);
}


    for (int i = 0; i < 4; ++i) {
      if (buf2[i] != prev * 10.0 + i) {
        std::fprintf(stderr, "rank %d: BAD DATA\n", rank);
        std::exit(1);
      }
    }
  });
  std::printf("RING-OK %.3f\n", result.makespan() * 1e6);
  return 0;
}
