
#include <cstdio>
#include <cstdlib>
#include <vector>
#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"
#include "shmem/shmem.hpp"
#include "translate/runtime.hpp"

int main() {
  cid::rt::run(4, [](cid::rt::RankCtx& ctx) {
    const int rank = ctx.rank();
    const int nprocs = ctx.nranks();
    (void)nprocs;
    const int n = 5;
    double buf1[5];
    double buf2[5] = {0, 0, 0, 0, 0};
    for (int p = 0; p < n; ++p) buf1[p] = rank * 2.0 + p;

{ /* cid-translate: comm_parameters region 1 */
std::vector<::cid::mpi::Request> cid_reqs_1;
auto cid_comm_1 = ::cid::mpi::Comm::world();

      for (int p = 0; p < n; ++p)
{ /* cid-translate: comm_p2p 2 */
if (rank%2==1) {
  cid_reqs_1.push_back(::cid::mpi::irecv(cid_comm_1, ::cid::trt::data_ptr(&buf2[p]), static_cast<std::size_t>(1), ::cid::trt::datatype_of_expr(&buf2[p]), (rank-1), 2000));
}
if (rank%2==0) {
  cid_reqs_1.push_back(::cid::mpi::isend(cid_comm_1, ::cid::trt::data_ptr(&buf1[p]), static_cast<std::size_t>(1), ::cid::trt::datatype_of_expr(&buf1[p]), (rank+1), 2000));
}
}

    ::cid::mpi::waitall(cid_reqs_1); /* cid-translate: consolidated synchronization */
}


    if (rank % 2 == 1) {
      for (int p = 0; p < n; ++p) {
        if (buf2[p] != (rank - 1) * 2.0 + p) std::exit(1);
      }
    }
  });
  std::printf("REGION-OK\n");
  return 0;
}
