#pragma comm_p2p bogus(1)
{ }
