file(REMOVE_RECURSE
  "CMakeFiles/ablation_datatype.dir/ablation_datatype.cpp.o"
  "CMakeFiles/ablation_datatype.dir/ablation_datatype.cpp.o.d"
  "ablation_datatype"
  "ablation_datatype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_datatype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
