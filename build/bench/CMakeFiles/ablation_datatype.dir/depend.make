# Empty dependencies file for ablation_datatype.
# This may be replaced when dependencies are built.
