# Empty dependencies file for fig4_spin_config.
# This may be replaced when dependencies are built.
