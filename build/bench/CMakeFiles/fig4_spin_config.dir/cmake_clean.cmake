file(REMOVE_RECURSE
  "CMakeFiles/fig4_spin_config.dir/fig4_spin_config.cpp.o"
  "CMakeFiles/fig4_spin_config.dir/fig4_spin_config.cpp.o.d"
  "fig4_spin_config"
  "fig4_spin_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_spin_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
