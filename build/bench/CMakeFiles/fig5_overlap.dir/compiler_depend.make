# Empty compiler generated dependencies file for fig5_overlap.
# This may be replaced when dependencies are built.
