file(REMOVE_RECURSE
  "CMakeFiles/fig5_overlap.dir/fig5_overlap.cpp.o"
  "CMakeFiles/fig5_overlap.dir/fig5_overlap.cpp.o.d"
  "fig5_overlap"
  "fig5_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
