file(REMOVE_RECURSE
  "CMakeFiles/fig3_single_atom.dir/fig3_single_atom.cpp.o"
  "CMakeFiles/fig3_single_atom.dir/fig3_single_atom.cpp.o.d"
  "fig3_single_atom"
  "fig3_single_atom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_single_atom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
