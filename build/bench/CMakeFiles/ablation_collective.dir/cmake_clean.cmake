file(REMOVE_RECURSE
  "CMakeFiles/ablation_collective.dir/ablation_collective.cpp.o"
  "CMakeFiles/ablation_collective.dir/ablation_collective.cpp.o.d"
  "ablation_collective"
  "ablation_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
