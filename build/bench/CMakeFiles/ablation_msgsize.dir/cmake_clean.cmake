file(REMOVE_RECURSE
  "CMakeFiles/ablation_msgsize.dir/ablation_msgsize.cpp.o"
  "CMakeFiles/ablation_msgsize.dir/ablation_msgsize.cpp.o.d"
  "ablation_msgsize"
  "ablation_msgsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_msgsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
