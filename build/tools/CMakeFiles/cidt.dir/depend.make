# Empty dependencies file for cidt.
# This may be replaced when dependencies are built.
