file(REMOVE_RECURSE
  "CMakeFiles/cidt.dir/cidt_main.cpp.o"
  "CMakeFiles/cidt.dir/cidt_main.cpp.o.d"
  "cidt"
  "cidt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cidt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
