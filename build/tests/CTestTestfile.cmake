# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rt_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/shmem_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/clauses_test[1]_include.cmake")
include("/root/repo/build/tests/region_test[1]_include.cmake")
include("/root/repo/build/tests/collective_directive_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_test[1]_include.cmake")
include("/root/repo/build/tests/translate_test[1]_include.cmake")
include("/root/repo/build/tests/wllsms_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
