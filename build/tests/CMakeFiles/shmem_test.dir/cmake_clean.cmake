file(REMOVE_RECURSE
  "CMakeFiles/shmem_test.dir/shmem_test.cpp.o"
  "CMakeFiles/shmem_test.dir/shmem_test.cpp.o.d"
  "shmem_test"
  "shmem_test.pdb"
  "shmem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shmem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
