file(REMOVE_RECURSE
  "CMakeFiles/clauses_test.dir/clauses_test.cpp.o"
  "CMakeFiles/clauses_test.dir/clauses_test.cpp.o.d"
  "clauses_test"
  "clauses_test.pdb"
  "clauses_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clauses_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
