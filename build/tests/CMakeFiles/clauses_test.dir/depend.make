# Empty dependencies file for clauses_test.
# This may be replaced when dependencies are built.
