
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/collective_directive_test.cpp" "tests/CMakeFiles/collective_directive_test.dir/collective_directive_test.cpp.o" "gcc" "tests/CMakeFiles/collective_directive_test.dir/collective_directive_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cid_core.dir/DependInfo.cmake"
  "/root/repo/build/src/translate/CMakeFiles/cid_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/cid_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/shmem/CMakeFiles/cid_shmem.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/cid_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/cid_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
