file(REMOVE_RECURSE
  "CMakeFiles/collective_directive_test.dir/collective_directive_test.cpp.o"
  "CMakeFiles/collective_directive_test.dir/collective_directive_test.cpp.o.d"
  "collective_directive_test"
  "collective_directive_test.pdb"
  "collective_directive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collective_directive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
