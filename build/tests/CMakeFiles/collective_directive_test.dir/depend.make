# Empty dependencies file for collective_directive_test.
# This may be replaced when dependencies are built.
