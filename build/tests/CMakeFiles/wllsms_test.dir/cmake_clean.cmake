file(REMOVE_RECURSE
  "CMakeFiles/wllsms_test.dir/wllsms_test.cpp.o"
  "CMakeFiles/wllsms_test.dir/wllsms_test.cpp.o.d"
  "wllsms_test"
  "wllsms_test.pdb"
  "wllsms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wllsms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
