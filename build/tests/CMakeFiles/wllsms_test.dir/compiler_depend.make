# Empty compiler generated dependencies file for wllsms_test.
# This may be replaced when dependencies are built.
