# Empty dependencies file for cid_shmem.
# This may be replaced when dependencies are built.
