file(REMOVE_RECURSE
  "CMakeFiles/cid_shmem.dir/heap.cpp.o"
  "CMakeFiles/cid_shmem.dir/heap.cpp.o.d"
  "CMakeFiles/cid_shmem.dir/shmem.cpp.o"
  "CMakeFiles/cid_shmem.dir/shmem.cpp.o.d"
  "libcid_shmem.a"
  "libcid_shmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cid_shmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
