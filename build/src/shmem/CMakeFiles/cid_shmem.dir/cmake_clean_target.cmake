file(REMOVE_RECURSE
  "libcid_shmem.a"
)
