# Empty dependencies file for cid_core.
# This may be replaced when dependencies are built.
