file(REMOVE_RECURSE
  "CMakeFiles/cid_core.dir/clauses.cpp.o"
  "CMakeFiles/cid_core.dir/clauses.cpp.o.d"
  "CMakeFiles/cid_core.dir/collective.cpp.o"
  "CMakeFiles/cid_core.dir/collective.cpp.o.d"
  "CMakeFiles/cid_core.dir/exec_state.cpp.o"
  "CMakeFiles/cid_core.dir/exec_state.cpp.o.d"
  "CMakeFiles/cid_core.dir/expr.cpp.o"
  "CMakeFiles/cid_core.dir/expr.cpp.o.d"
  "CMakeFiles/cid_core.dir/pragma.cpp.o"
  "CMakeFiles/cid_core.dir/pragma.cpp.o.d"
  "CMakeFiles/cid_core.dir/region.cpp.o"
  "CMakeFiles/cid_core.dir/region.cpp.o.d"
  "CMakeFiles/cid_core.dir/stats.cpp.o"
  "CMakeFiles/cid_core.dir/stats.cpp.o.d"
  "CMakeFiles/cid_core.dir/trace.cpp.o"
  "CMakeFiles/cid_core.dir/trace.cpp.o.d"
  "CMakeFiles/cid_core.dir/type_layout.cpp.o"
  "CMakeFiles/cid_core.dir/type_layout.cpp.o.d"
  "libcid_core.a"
  "libcid_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cid_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
