
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/clauses.cpp" "src/core/CMakeFiles/cid_core.dir/clauses.cpp.o" "gcc" "src/core/CMakeFiles/cid_core.dir/clauses.cpp.o.d"
  "/root/repo/src/core/collective.cpp" "src/core/CMakeFiles/cid_core.dir/collective.cpp.o" "gcc" "src/core/CMakeFiles/cid_core.dir/collective.cpp.o.d"
  "/root/repo/src/core/exec_state.cpp" "src/core/CMakeFiles/cid_core.dir/exec_state.cpp.o" "gcc" "src/core/CMakeFiles/cid_core.dir/exec_state.cpp.o.d"
  "/root/repo/src/core/expr.cpp" "src/core/CMakeFiles/cid_core.dir/expr.cpp.o" "gcc" "src/core/CMakeFiles/cid_core.dir/expr.cpp.o.d"
  "/root/repo/src/core/pragma.cpp" "src/core/CMakeFiles/cid_core.dir/pragma.cpp.o" "gcc" "src/core/CMakeFiles/cid_core.dir/pragma.cpp.o.d"
  "/root/repo/src/core/region.cpp" "src/core/CMakeFiles/cid_core.dir/region.cpp.o" "gcc" "src/core/CMakeFiles/cid_core.dir/region.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/core/CMakeFiles/cid_core.dir/stats.cpp.o" "gcc" "src/core/CMakeFiles/cid_core.dir/stats.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/cid_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/cid_core.dir/trace.cpp.o.d"
  "/root/repo/src/core/type_layout.cpp" "src/core/CMakeFiles/cid_core.dir/type_layout.cpp.o" "gcc" "src/core/CMakeFiles/cid_core.dir/type_layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cid_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/cid_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/cid_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/cid_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/shmem/CMakeFiles/cid_shmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
