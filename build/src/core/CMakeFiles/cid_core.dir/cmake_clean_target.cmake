file(REMOVE_RECURSE
  "libcid_core.a"
)
