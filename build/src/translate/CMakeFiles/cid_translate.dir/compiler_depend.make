# Empty compiler generated dependencies file for cid_translate.
# This may be replaced when dependencies are built.
