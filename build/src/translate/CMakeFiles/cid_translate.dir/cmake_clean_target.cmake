file(REMOVE_RECURSE
  "libcid_translate.a"
)
