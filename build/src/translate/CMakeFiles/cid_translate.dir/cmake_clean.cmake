file(REMOVE_RECURSE
  "CMakeFiles/cid_translate.dir/translator.cpp.o"
  "CMakeFiles/cid_translate.dir/translator.cpp.o.d"
  "libcid_translate.a"
  "libcid_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cid_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
