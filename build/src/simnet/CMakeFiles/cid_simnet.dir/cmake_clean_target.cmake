file(REMOVE_RECURSE
  "libcid_simnet.a"
)
