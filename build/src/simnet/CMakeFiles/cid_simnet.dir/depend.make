# Empty dependencies file for cid_simnet.
# This may be replaced when dependencies are built.
