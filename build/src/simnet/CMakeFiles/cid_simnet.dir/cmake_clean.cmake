file(REMOVE_RECURSE
  "CMakeFiles/cid_simnet.dir/machine_model.cpp.o"
  "CMakeFiles/cid_simnet.dir/machine_model.cpp.o.d"
  "libcid_simnet.a"
  "libcid_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cid_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
