# Empty dependencies file for cid_mpi.
# This may be replaced when dependencies are built.
