file(REMOVE_RECURSE
  "CMakeFiles/cid_mpi.dir/collectives.cpp.o"
  "CMakeFiles/cid_mpi.dir/collectives.cpp.o.d"
  "CMakeFiles/cid_mpi.dir/comm.cpp.o"
  "CMakeFiles/cid_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/cid_mpi.dir/datatype.cpp.o"
  "CMakeFiles/cid_mpi.dir/datatype.cpp.o.d"
  "CMakeFiles/cid_mpi.dir/p2p.cpp.o"
  "CMakeFiles/cid_mpi.dir/p2p.cpp.o.d"
  "CMakeFiles/cid_mpi.dir/pack.cpp.o"
  "CMakeFiles/cid_mpi.dir/pack.cpp.o.d"
  "CMakeFiles/cid_mpi.dir/request.cpp.o"
  "CMakeFiles/cid_mpi.dir/request.cpp.o.d"
  "CMakeFiles/cid_mpi.dir/win.cpp.o"
  "CMakeFiles/cid_mpi.dir/win.cpp.o.d"
  "libcid_mpi.a"
  "libcid_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cid_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
