
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/collectives.cpp" "src/mpi/CMakeFiles/cid_mpi.dir/collectives.cpp.o" "gcc" "src/mpi/CMakeFiles/cid_mpi.dir/collectives.cpp.o.d"
  "/root/repo/src/mpi/comm.cpp" "src/mpi/CMakeFiles/cid_mpi.dir/comm.cpp.o" "gcc" "src/mpi/CMakeFiles/cid_mpi.dir/comm.cpp.o.d"
  "/root/repo/src/mpi/datatype.cpp" "src/mpi/CMakeFiles/cid_mpi.dir/datatype.cpp.o" "gcc" "src/mpi/CMakeFiles/cid_mpi.dir/datatype.cpp.o.d"
  "/root/repo/src/mpi/p2p.cpp" "src/mpi/CMakeFiles/cid_mpi.dir/p2p.cpp.o" "gcc" "src/mpi/CMakeFiles/cid_mpi.dir/p2p.cpp.o.d"
  "/root/repo/src/mpi/pack.cpp" "src/mpi/CMakeFiles/cid_mpi.dir/pack.cpp.o" "gcc" "src/mpi/CMakeFiles/cid_mpi.dir/pack.cpp.o.d"
  "/root/repo/src/mpi/request.cpp" "src/mpi/CMakeFiles/cid_mpi.dir/request.cpp.o" "gcc" "src/mpi/CMakeFiles/cid_mpi.dir/request.cpp.o.d"
  "/root/repo/src/mpi/win.cpp" "src/mpi/CMakeFiles/cid_mpi.dir/win.cpp.o" "gcc" "src/mpi/CMakeFiles/cid_mpi.dir/win.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cid_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/cid_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/cid_rt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
