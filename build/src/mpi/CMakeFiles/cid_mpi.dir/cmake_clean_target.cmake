file(REMOVE_RECURSE
  "libcid_mpi.a"
)
