file(REMOVE_RECURSE
  "libcid_wllsms.a"
)
