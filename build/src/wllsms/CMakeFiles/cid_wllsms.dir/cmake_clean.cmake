file(REMOVE_RECURSE
  "CMakeFiles/cid_wllsms.dir/atom.cpp.o"
  "CMakeFiles/cid_wllsms.dir/atom.cpp.o.d"
  "CMakeFiles/cid_wllsms.dir/comm_directive.cpp.o"
  "CMakeFiles/cid_wllsms.dir/comm_directive.cpp.o.d"
  "CMakeFiles/cid_wllsms.dir/comm_original.cpp.o"
  "CMakeFiles/cid_wllsms.dir/comm_original.cpp.o.d"
  "CMakeFiles/cid_wllsms.dir/compute.cpp.o"
  "CMakeFiles/cid_wllsms.dir/compute.cpp.o.d"
  "CMakeFiles/cid_wllsms.dir/driver.cpp.o"
  "CMakeFiles/cid_wllsms.dir/driver.cpp.o.d"
  "libcid_wllsms.a"
  "libcid_wllsms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cid_wllsms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
