# Empty compiler generated dependencies file for cid_wllsms.
# This may be replaced when dependencies are built.
