# Empty dependencies file for cid_rt.
# This may be replaced when dependencies are built.
