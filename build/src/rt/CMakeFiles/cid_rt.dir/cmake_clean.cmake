file(REMOVE_RECURSE
  "CMakeFiles/cid_rt.dir/mailbox.cpp.o"
  "CMakeFiles/cid_rt.dir/mailbox.cpp.o.d"
  "CMakeFiles/cid_rt.dir/runtime.cpp.o"
  "CMakeFiles/cid_rt.dir/runtime.cpp.o.d"
  "CMakeFiles/cid_rt.dir/world.cpp.o"
  "CMakeFiles/cid_rt.dir/world.cpp.o.d"
  "libcid_rt.a"
  "libcid_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cid_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
