file(REMOVE_RECURSE
  "libcid_rt.a"
)
