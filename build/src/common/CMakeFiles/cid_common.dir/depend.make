# Empty dependencies file for cid_common.
# This may be replaced when dependencies are built.
