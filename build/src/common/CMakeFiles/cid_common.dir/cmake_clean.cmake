file(REMOVE_RECURSE
  "CMakeFiles/cid_common.dir/error.cpp.o"
  "CMakeFiles/cid_common.dir/error.cpp.o.d"
  "CMakeFiles/cid_common.dir/log.cpp.o"
  "CMakeFiles/cid_common.dir/log.cpp.o.d"
  "CMakeFiles/cid_common.dir/strings.cpp.o"
  "CMakeFiles/cid_common.dir/strings.cpp.o.d"
  "libcid_common.a"
  "libcid_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cid_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
