file(REMOVE_RECURSE
  "libcid_common.a"
)
