// Ablation A4 - how much computation is needed to hide the communication.
//
// The paper notes the overlap gain is bounded by the communication time
// because WL-LSMS computes 19x longer than it communicates. This sweep
// varies the compute:communication ratio (by scaling the core-state cost)
// and reports sequential vs overlapped execution time, locating the regime
// where overlap matters.
#include <vector>

#include "bench/bench_util.hpp"
#include "wllsms/driver.hpp"

int main(int argc, char** argv) {
  using namespace cid::wllsms;
  using namespace cid::bench;

  const bool quick = quick_mode(argc, argv);
  print_header(
      "Ablation A4 - overlap benefit vs compute:communication ratio",
      "setEvec + calculateCoreStates at 1 WL + 16x4 ranks; the core-state\n"
      "cost is scaled so the compute:comm ratio sweeps from 19:1 down to\n"
      "ratios where communication is visible.");

  print_row({"ratio", "sequential(us)", "overlapped(us)", "gain"}, 16);

  // gpu_speedup rescales compute: 1 => ~19:1 (the paper's CPU code),
  // 10 => ~1.9:1 (the paper's projected GPU port), and beyond.
  std::vector<double> speedups = {1, 2, 5, 10, 20, 50};
  if (quick) speedups = {1, 10, 50};

  for (double speedup : speedups) {
    ExperimentConfig config;
    config.nprocs = 65;
    config.num_lsms = 16;
    config.natoms = 16;
    config.wl_steps = quick ? 4 : 8;
    config.compute.gpu_speedup = speedup;

    const double sequential =
        run_spin_with_compute(config, Variant::Original);
    const double overlapped =
        run_spin_with_compute(config, Variant::DirectiveMpi);

    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "19:%.0f", speedup);
    print_row({ratio, fmt_us(sequential), fmt_us(overlapped),
               fmt_x(sequential / overlapped)},
              16);
  }

  std::printf(
      "\nShape check: at 19:1 compute dominates and the gain is small; as\n"
      "compute shrinks (GPU projections) the directive's overlap removes an\n"
      "increasing share of the remaining time.\n");
  return 0;
}
