// Ablation A6 - cost of the reliability protocol on a lossy network.
//
// Two questions about the reliability(timeout, max_retries) region option:
//
//  (a) What does the protocol cost when nothing goes wrong? The reliable
//      lowering mirrors the plain one's virtual-time charges and offloads
//      its acks/fins to the NIC, so the overhead at a 0% fault rate must be
//      within 1% of the unprotected directive (it is exactly 0 in the
//      model). The bench FAILS (exit 1) if the budget is exceeded.
//
//  (b) What does recovery cost? The WL-LSMS setEvec spin scatter (the
//      paper's Figure 4 phase) runs under seeded FaultPlans dropping 1-10%
//      of all messages — data and protocol traffic alike — and the sweep
//      reports the makespan growth next to the retransmit/timeout counters
//      that produced it.
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/core.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "rt/runtime.hpp"
#include "wllsms/driver.hpp"

namespace {

using namespace cid;
using wllsms::EvecReliability;
using wllsms::ExperimentConfig;
using wllsms::Variant;

constexpr EvecReliability kReliability{true, /*timeout_us=*/100,
                                       /*max_retries=*/10};

/// Reliability counters aggregated over all ranks of one run.
struct ProtocolTotals {
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t undelivered = 0;
};

struct ScatterResult {
  double makespan = 0.0;
  ProtocolTotals totals;
  faults::FaultStats fault_stats;
};

/// The spin scatter, optionally reliable, optionally under a drop plan.
ScatterResult run_scatter(int nprocs, int wl_steps, bool reliable,
                          double drop_rate, std::uint64_t seed) {
  ExperimentConfig config;
  config.nprocs = nprocs;
  config.num_lsms = 16;
  config.natoms = 16;
  config.wl_steps = wl_steps;
  if (reliable) config.reliability = kReliability;

  std::shared_ptr<faults::FaultInjector> injector;
  if (drop_rate > 0.0) {
    const faults::FaultPlan plan(seed, faults::FaultSpec::drops(drop_rate));
    injector = std::make_shared<faults::FaultInjector>(plan, nprocs);
    config.interceptor = injector;
  }

  ScatterResult result;
  std::mutex mu;
  config.per_rank_epilogue = [&](rt::RankCtx&) {
    const core::CommStats& stats = core::comm_stats();
    std::lock_guard<std::mutex> lock(mu);
    result.totals.retransmits += stats.retransmits;
    result.totals.timeouts += stats.timeouts;
    result.totals.duplicates_suppressed += stats.duplicates_suppressed;
    result.totals.undelivered += stats.undelivered_pairs;
  };

  result.makespan = wllsms::run_spin_scatter(config, Variant::DirectiveMpi);
  if (injector) result.fault_stats = injector->stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::quick_mode(argc, argv);
  const int wl_steps = quick ? 2 : 8;

  bench::print_header(
      "A6  reliability protocol under injected message loss",
      "Part 1: zero-fault overhead of reliability(100us, 10 retries).\n"
      "Part 2: WL-LSMS spin-scatter recovery cost at 1-10% drop rates.");

  // ---- Part 1: overhead at 0% faults -------------------------------------
  std::printf("\n-- zero-fault overhead (spin scatter, directive-mpi2side) --\n");
  bench::print_row({"nprocs", "plain_us", "reliable_us", "overhead"});
  const std::vector<int> nprocs_sweep =
      quick ? std::vector<int>{33} : std::vector<int>{33, 65, 129};
  bool budget_ok = true;
  for (const int nprocs : nprocs_sweep) {
    const double plain =
        run_scatter(nprocs, wl_steps, false, 0.0, 0).makespan;
    const double reliable =
        run_scatter(nprocs, wl_steps, true, 0.0, 0).makespan;
    const double overhead = (reliable - plain) / plain;
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%+.4f%%", overhead * 100.0);
    bench::print_row({std::to_string(nprocs), bench::fmt_us(plain),
                      bench::fmt_us(reliable), pct});
    if (overhead > 0.01) budget_ok = false;
  }
  if (!budget_ok) {
    std::printf("  !! zero-fault overhead exceeds the 1%% budget\n");
    return 1;
  }

  // ---- Part 2: recovery cost at 1-10% drops -------------------------------
  std::printf("\n-- recovery cost (nprocs=33, drops on every channel) --\n");
  bench::print_row({"drop_rate", "makespan_us", "vs_0%", "dropped",
                    "retransmit", "timeout", "lost"},
                   12);
  const double baseline = run_scatter(33, wl_steps, true, 0.0, 0).makespan;
  const std::vector<double> drop_sweep =
      quick ? std::vector<double>{0.05}
            : std::vector<double>{0.01, 0.02, 0.05, 0.10};
  for (const double rate : drop_sweep) {
    const ScatterResult r = run_scatter(33, wl_steps, true, rate, 0x5eedULL);
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2fx", r.makespan / baseline);
    char rate_cell[32];
    std::snprintf(rate_cell, sizeof(rate_cell), "%.0f%%", rate * 100.0);
    bench::print_row({rate_cell, bench::fmt_us(r.makespan), ratio,
                      std::to_string(r.fault_stats.drops),
                      std::to_string(r.totals.retransmits),
                      std::to_string(r.totals.timeouts),
                      std::to_string(r.totals.undelivered)},
                     12);
  }

  std::printf(
      "\nReading: the protocol is free when the network behaves; at f%%\n"
      "drops the scatter pays roughly one backoff round per dropped DATA or\n"
      "ACK, growing the makespan smoothly instead of hanging the phase.\n");
  return 0;
}
