// bench_hotpath - WALL-CLOCK throughput of the runtime's hot paths.
//
// Unlike the figure/ablation benches (which report deterministic VIRTUAL
// time from the machine model), this bench times the host: it answers "how
// many envelopes per second can the mailbox match?" and "how many GB/s can
// the datatype layer pack?", which is what the ROADMAP's "as fast as the
// hardware allows" north star is measured against.
//
// Workloads:
//   match_reverse   2 ranks; the receiver extracts N queued messages in
//                   reverse arrival order (worst case for a linear-scan
//                   mailbox: O(N^2) predicate calls + a full queue rescan on
//                   every condvar wakeup; O(N) for an indexed mailbox).
//   match_forward   2 ranks; N small messages received in arrival order with
//                   exact (source, tag) - the per-message overhead path
//                   (allocation, matching, wakeup).
//   match_wildcard  8 ranks; 7 senders, one receiver draining with
//                   kAnySource/kAnyTag - the wildcard matching path.
//   pack_struct     gather+scatter of a 24-field struct-of-doubles datatype
//                   whose fields are memory-adjacent (coalescible into one
//                   run) inside a padded extent.
//   pack_strided    gather+scatter of a genuinely strided struct (holes
//                   between every field; nothing to coalesce).
//   pack_api        MPI_Pack/MPI_Unpack round trip through the public pack()
//                   API (measures the wire-buffer staging path).
//
// Emits BENCH_hotpath.json (override with --out FILE). With
// --baseline FILE, each workload also reports the speedup against the
// baseline JSON's numbers (same schema), e.g. one captured on the pre-PR
// tree.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"

namespace {

using namespace cid;
using rt::RankCtx;
using simnet::MachineModel;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct WorkloadResult {
  std::string name;
  std::string unit;      ///< what `value` measures (higher is better)
  double value = 0.0;    ///< throughput
  double seconds = 0.0;  ///< wall time of the measured section
  std::uint64_t items = 0;  ///< messages matched / bytes moved
};

// ---------------------------------------------------------------------------
// Matching workloads
// ---------------------------------------------------------------------------

/// Receiver posts exact-match receives for tags N-1 .. 0 while the sender
/// injected them as 0 .. N-1.
WorkloadResult match_reverse(int n_messages) {
  double elapsed = 0.0;
  rt::run(2, MachineModel::zero(), [&](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    double payload = 0.0;
    if (ctx.rank() == 0) {
      for (int i = 0; i < n_messages; ++i) {
        mpi::send(world, &payload, 1, /*dest=*/1, /*tag=*/i);
      }
      ctx.barrier();  // messages are all queued before timing starts
      ctx.barrier();
    } else {
      ctx.barrier();
      const auto start = Clock::now();
      for (int i = n_messages - 1; i >= 0; --i) {
        mpi::recv(world, &payload, 1, /*source=*/0, /*tag=*/i);
      }
      elapsed = seconds_since(start);
      ctx.barrier();
    }
  });
  WorkloadResult out;
  out.name = "match_reverse";
  out.unit = "envelopes_per_sec";
  out.items = static_cast<std::uint64_t>(n_messages);
  out.seconds = elapsed;
  out.value = static_cast<double>(n_messages) / elapsed;
  return out;
}

/// Sender streams N messages; receiver drains them in arrival order with
/// exact (source, tag) matching, concurrently with the sender.
WorkloadResult match_forward(int n_messages) {
  double elapsed = 0.0;
  rt::run(2, MachineModel::zero(), [&](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    double payload = 0.0;
    ctx.barrier();
    const auto start = Clock::now();
    if (ctx.rank() == 0) {
      for (int i = 0; i < n_messages; ++i) {
        mpi::send(world, &payload, 1, /*dest=*/1, /*tag=*/i);
      }
      ctx.barrier();
    } else {
      for (int i = 0; i < n_messages; ++i) {
        mpi::recv(world, &payload, 1, /*source=*/0, /*tag=*/i);
      }
      elapsed = seconds_since(start);
      ctx.barrier();
    }
  });
  WorkloadResult out;
  out.name = "match_forward";
  out.unit = "envelopes_per_sec";
  out.items = static_cast<std::uint64_t>(n_messages);
  out.seconds = elapsed;
  out.value = static_cast<double>(n_messages) / elapsed;
  return out;
}

/// 7 senders stream to rank 0, which drains everything with wildcards.
WorkloadResult match_wildcard(int per_sender) {
  constexpr int kRanks = 8;
  const int total = per_sender * (kRanks - 1);
  double elapsed = 0.0;
  rt::run(kRanks, MachineModel::zero(), [&](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    double payload = 0.0;
    ctx.barrier();
    if (ctx.rank() == 0) {
      const auto start = Clock::now();
      for (int i = 0; i < total; ++i) {
        mpi::recv(world, &payload, 1, mpi::kAnySource, mpi::kAnyTag);
      }
      elapsed = seconds_since(start);
    } else {
      for (int i = 0; i < per_sender; ++i) {
        mpi::send(world, &payload, 1, /*dest=*/0, /*tag=*/i);
      }
    }
    ctx.barrier();
  });
  WorkloadResult out;
  out.name = "match_wildcard";
  out.unit = "envelopes_per_sec";
  out.items = static_cast<std::uint64_t>(total);
  out.seconds = elapsed;
  out.value = static_cast<double>(total) / elapsed;
  return out;
}

// ---------------------------------------------------------------------------
// Datatype workloads
// ---------------------------------------------------------------------------

/// 24 adjacent doubles inside a 200-byte extent (like a struct of scalars
/// with trailing padding): coalescible into one 192-byte run per element.
mpi::Datatype make_adjacent_struct() {
  std::vector<mpi::TypeField> fields;
  for (std::size_t f = 0; f < 24; ++f) {
    fields.push_back({f * sizeof(double), 1, mpi::BasicType::Double});
  }
  auto result = mpi::Datatype::create_struct(fields, 200);
  CID_REQUIRE(result.is_ok(), ErrorCode::RuntimeFault,
              result.status().to_string());
  auto dtype = std::move(result).take();
  dtype.commit();
  return dtype;
}

/// 12 doubles at stride 16 (a hole after every field): nothing coalesces.
mpi::Datatype make_strided_struct() {
  std::vector<mpi::TypeField> fields;
  for (std::size_t f = 0; f < 12; ++f) {
    fields.push_back({f * 16, 1, mpi::BasicType::Double});
  }
  auto result = mpi::Datatype::create_struct(fields, 192);
  CID_REQUIRE(result.is_ok(), ErrorCode::RuntimeFault,
              result.status().to_string());
  auto dtype = std::move(result).take();
  dtype.commit();
  return dtype;
}

/// gather+scatter round trips; GB/s counts payload bytes moved in each
/// direction.
WorkloadResult pack_roundtrip(const char* name, const mpi::Datatype& dtype,
                              std::size_t count, int iters) {
  std::vector<std::byte> elements(dtype.extent() * count);
  for (std::size_t i = 0; i < elements.size(); ++i) {
    elements[i] = static_cast<std::byte>(i * 131u);
  }
  const std::uint64_t bytes_per_iter =
      2ull * dtype.payload_size() * count;  // gather + scatter
  double checksum = 0.0;
  const auto start = Clock::now();
  for (int it = 0; it < iters; ++it) {
    ByteBuffer wire = dtype.gather(elements.data(), count);
    const Status status =
        dtype.scatter(ByteSpan(wire.data(), wire.size()), elements.data(),
                      count);
    CID_REQUIRE(status.is_ok(), ErrorCode::RuntimeFault, status.to_string());
    checksum += static_cast<double>(wire[0]);  // defeat dead-code elimination
  }
  const double elapsed = seconds_since(start);
  if (checksum < 0) std::printf("impossible\n");
  WorkloadResult out;
  out.name = name;
  out.unit = "gb_per_sec";
  out.items = bytes_per_iter * static_cast<std::uint64_t>(iters);
  out.seconds = elapsed;
  out.value = static_cast<double>(out.items) / elapsed / 1e9;
  return out;
}

/// MPI_Pack/MPI_Unpack through the public API (runs in a 1-rank world since
/// pack() charges virtual compute time to the calling rank).
WorkloadResult pack_api(const mpi::Datatype& dtype, std::size_t count,
                        int iters) {
  WorkloadResult out;
  out.name = "pack_api";
  out.unit = "gb_per_sec";
  rt::run(1, MachineModel::zero(), [&](RankCtx&) {
    auto world = mpi::Comm::world();
    std::vector<std::byte> elements(dtype.extent() * count);
    for (std::size_t i = 0; i < elements.size(); ++i) {
      elements[i] = static_cast<std::byte>(i * 197u);
    }
    std::vector<std::byte> wire(mpi::pack_size(count, dtype));
    const std::uint64_t bytes_per_iter = 2ull * dtype.payload_size() * count;
    const auto start = Clock::now();
    for (int it = 0; it < iters; ++it) {
      std::size_t position = 0;
      mpi::pack(world, elements.data(), count, dtype,
                MutableByteSpan(wire.data(), wire.size()), position);
      position = 0;
      mpi::unpack(world, ByteSpan(wire.data(), wire.size()), position,
                  elements.data(), count, dtype);
    }
    out.seconds = seconds_since(start);
    out.items = bytes_per_iter * static_cast<std::uint64_t>(iters);
    out.value = static_cast<double>(out.items) / out.seconds / 1e9;
  });
  return out;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

/// Pull `"value": <number>` for workload `name` out of a baseline JSON
/// produced by this bench (tiny fixed-schema scan, no JSON library).
double baseline_value(const std::string& json, const std::string& name) {
  const auto at = json.find("\"name\": \"" + name + "\"");
  if (at == std::string::npos) return 0.0;
  const auto key = json.find("\"value\":", at);
  if (key == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + key + 8, nullptr);
}

void write_json(const std::string& path,
                const std::vector<WorkloadResult>& results, bool quick,
                const std::string& baseline_json) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"hotpath\",\n  \"kind\": \"wall_clock\",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  if (!baseline_json.empty()) {
    out << "  \"baseline\": \"" << cid::bench::kBaselineLabel << "\",\n";
  }
  out << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"name\": \"%s\", \"unit\": \"%s\", \"value\": %.1f, "
                  "\"seconds\": %.6f, \"items\": %llu",
                  r.name.c_str(), r.unit.c_str(), r.value, r.seconds,
                  static_cast<unsigned long long>(r.items));
    out << buffer;
    if (!baseline_json.empty()) {
      const double base = baseline_value(baseline_json, r.name);
      if (base > 0.0) {
        std::snprintf(buffer, sizeof(buffer),
                      ", \"baseline_value\": %.1f, \"speedup\": %.2f", base,
                      r.value / base);
        out << buffer;
      }
    }
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = cid::bench::quick_mode(argc, argv);
  std::string out_path = "BENCH_hotpath.json";
  std::string baseline_path;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
    if (std::string(argv[i]) == "--baseline") baseline_path = argv[i + 1];
  }
  std::string baseline_json;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    baseline_json = buffer.str();
  }

  const int reverse_n = quick ? 1500 : 6000;
  const int forward_n = quick ? 30000 : 150000;
  const int wildcard_n = quick ? 3000 : 15000;
  const std::size_t pack_count = quick ? 2048 : 4096;
  const int pack_iters = quick ? 60 : 200;

  cid::bench::print_header(
      "bench_hotpath - wall-clock hot-path throughput",
      "envelopes/sec through the mailbox, GB/s through the datatype layer");
  std::printf("(HOST wall-clock time - machine-dependent, not virtual)\n\n");

  std::vector<WorkloadResult> results;
  results.push_back(match_reverse(reverse_n));
  results.push_back(match_forward(forward_n));
  results.push_back(match_wildcard(wildcard_n));
  const auto adjacent = make_adjacent_struct();
  const auto strided = make_strided_struct();
  results.push_back(
      pack_roundtrip("pack_struct", adjacent, pack_count, pack_iters));
  results.push_back(
      pack_roundtrip("pack_strided", strided, pack_count, pack_iters));
  results.push_back(pack_api(adjacent, pack_count, pack_iters));

  cid::bench::print_row({"workload", "items", "seconds", "throughput"});
  for (const auto& r : results) {
    char value[64];
    std::snprintf(value, sizeof(value), "%.3g %s", r.value, r.unit.c_str());
    char secs[32];
    std::snprintf(secs, sizeof(secs), "%.4f", r.seconds);
    cid::bench::print_row(
        {r.name, std::to_string(r.items), secs, value}, 24);
  }
  write_json(out_path, results, quick, baseline_json);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
