// Figure 4: "Experimental results for communication of random spin
// configurations".
//
// Paper setup: the setEvec scatter (3 doubles = 24 B per atom type) inside
// every LIZ, executed in the WL main loop. Series: the original
// Isend/Irecv + per-request MPI_Wait loop, the directive targeting MPI
// 2-sided (~4x mean speedup), and the directive targeting SHMEM (~38x mean
// speedup). Also reports the paper's validation variant (original with
// MPI_Waitall, ~2.6x) which decomposes the MPI gain into the
// sync-consolidation part and the generated-calls part (~1.4x).
#include <cstdlib>

#include "bench/bench_util.hpp"
#include "wllsms/driver.hpp"

int main(int argc, char** argv) {
  using namespace cid::wllsms;
  using namespace cid::bench;

  const bool quick = quick_mode(argc, argv);
  print_header(
      "Figure 4 - random spin configuration scatter (setEvec)",
      "24-byte spin vectors from each LIZ's privileged rank to the owning\n"
      "members, repeated over WL main-loop steps. Speedups vs the original\n"
      "per-request Wait loop.");

  print_row({"nprocs", "orig(us)", "waitall(us)", "dir-mpi(us)",
             "dir-shm(us)", "waitall-spd", "mpi-spd", "shmem-spd"},
            13);

  std::vector<int> sweep = Topology::paper_nprocs_sweep();
  if (quick) sweep = {33, 113, 209, 337};

  double mpi_speedup_sum = 0.0;
  double shmem_speedup_sum = 0.0;
  double waitall_speedup_sum = 0.0;

  for (int nprocs : sweep) {
    ExperimentConfig config;
    config.nprocs = nprocs;
    config.num_lsms = 16;
    config.natoms = 16;
    config.wl_steps = quick ? 12 : 24;

    const double original = run_spin_scatter(config, Variant::Original);
    const double waitall =
        run_spin_scatter(config, Variant::OriginalWaitall);
    const double mpi = run_spin_scatter(config, Variant::DirectiveMpi);
    const double shmem = run_spin_scatter(config, Variant::DirectiveShmem);

    waitall_speedup_sum += original / waitall;
    mpi_speedup_sum += original / mpi;
    shmem_speedup_sum += original / shmem;

    print_row({std::to_string(nprocs), fmt_us(original), fmt_us(waitall),
               fmt_us(mpi), fmt_us(shmem), fmt_x(original / waitall),
               fmt_x(original / mpi), fmt_x(original / shmem)},
              13);
  }

  const double n = static_cast<double>(sweep.size());
  std::printf("\nMean speedups over the sweep:\n");
  std::printf("  original+Waitall : %.2fx   (paper: about 2.6x)\n",
              waitall_speedup_sum / n);
  std::printf("  directive MPI    : %.2fx   (paper: about 4x)\n",
              mpi_speedup_sum / n);
  std::printf("  directive SHMEM  : %.2fx   (paper: about 38x)\n",
              shmem_speedup_sum / n);
  return 0;
}
