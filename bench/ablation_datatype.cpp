// Ablation A3 - composite payload marshalling strategies.
//
// The original WL-LSMS code marshals the single-atom scalars with a chain of
// MPI_Pack calls (Listing 4); the directive's automatic datatype handling
// builds one derived MPI struct (cached per scope) instead. A third
// hand-written alternative sends each field as its own message. This bench
// quantifies the trade-off as the number of transferred composites grows.
#include <vector>

#include "bench/bench_util.hpp"
#include "core/core.hpp"
#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"
#include "wllsms/atom.hpp"

namespace {

using namespace cid;
using wllsms::AtomScalarData;

enum class Marshal { Pack, DerivedType, FieldPerMessage };

double run_transfers(int count, Marshal marshal) {
  const auto model = simnet::MachineModel::cray_xk7_gemini();
  auto result = rt::run(2, model, [&](rt::RankCtx& ctx) {
    auto world = mpi::Comm::world();
    AtomScalarData data{};
    data.jmt = 42;

    switch (marshal) {
      case Marshal::Pack: {
        std::vector<std::byte> buffer(512);
        for (int i = 0; i < count; ++i) {
          if (ctx.rank() == 0) {
            std::size_t pos = 0;
            mpi::pack(world, &data.local_id, 1, buffer, pos);
            mpi::pack(world, &data.jmt, 1, buffer, pos);
            mpi::pack(world, &data.jws, 1, buffer, pos);
            mpi::pack(world, &data.xstart, 1, buffer, pos);
            mpi::pack(world, &data.rmt, 1, buffer, pos);
            mpi::pack(world, data.header, 80, buffer, pos);
            mpi::pack(world, &data.alat, 1, buffer, pos);
            mpi::pack(world, &data.efermi, 1, buffer, pos);
            mpi::pack(world, &data.vdif, 1, buffer, pos);
            mpi::pack(world, &data.ztotss, 1, buffer, pos);
            mpi::pack(world, &data.zcorss, 1, buffer, pos);
            mpi::pack(world, data.evec, 3, buffer, pos);
            mpi::pack(world, &data.nspin, 1, buffer, pos);
            mpi::pack(world, &data.numc, 1, buffer, pos);
            mpi::send(world, buffer.data(), pos,
                      mpi::Datatype::basic(mpi::BasicType::Packed), 1, 0);
          } else {
            auto status = mpi::recv(
                world, buffer.data(), buffer.size(),
                mpi::Datatype::basic(mpi::BasicType::Packed), 0, 0);
            const ByteSpan wire(buffer.data(), status.count);
            std::size_t pos = 0;
            mpi::unpack(world, wire, pos, &data.local_id, 1);
            mpi::unpack(world, wire, pos, &data.jmt, 1);
            mpi::unpack(world, wire, pos, &data.jws, 1);
            mpi::unpack(world, wire, pos, &data.xstart, 1);
            mpi::unpack(world, wire, pos, &data.rmt, 1);
            mpi::unpack(world, wire, pos, data.header, 80);
            mpi::unpack(world, wire, pos, &data.alat, 1);
            mpi::unpack(world, wire, pos, &data.efermi, 1);
            mpi::unpack(world, wire, pos, &data.vdif, 1);
            mpi::unpack(world, wire, pos, &data.ztotss, 1);
            mpi::unpack(world, wire, pos, &data.zcorss, 1);
            mpi::unpack(world, wire, pos, data.evec, 3);
            mpi::unpack(world, wire, pos, &data.nspin, 1);
            mpi::unpack(world, wire, pos, &data.numc, 1);
          }
        }
        break;
      }

      case Marshal::DerivedType: {
        // The directive path: derived datatype built once, then reused.
        for (int i = 0; i < count; ++i) {
          core::comm_p2p(core::Clauses()
                             .sender(0)
                             .receiver(1)
                             .sendwhen("rank==0")
                             .receivewhen("rank==1")
                             .count(1)
                             .sbuf(core::buf(data))
                             .rbuf(core::buf(data)));
        }
        break;
      }

      case Marshal::FieldPerMessage: {
        for (int i = 0; i < count; ++i) {
          if (ctx.rank() == 0) {
            std::vector<mpi::Request> reqs;
            reqs.push_back(mpi::isend(world, &data.local_id, 1, 1, 0));
            reqs.push_back(mpi::isend(world, &data.jmt, 1, 1, 1));
            reqs.push_back(mpi::isend(world, &data.jws, 1, 1, 2));
            reqs.push_back(mpi::isend(world, &data.xstart, 1, 1, 3));
            reqs.push_back(mpi::isend(world, &data.rmt, 1, 1, 4));
            reqs.push_back(mpi::isend(world, data.header, 80, 1, 5));
            reqs.push_back(mpi::isend(world, &data.alat, 1, 1, 6));
            reqs.push_back(mpi::isend(world, &data.efermi, 1, 1, 7));
            reqs.push_back(mpi::isend(world, &data.vdif, 1, 1, 8));
            reqs.push_back(mpi::isend(world, &data.ztotss, 1, 1, 9));
            reqs.push_back(mpi::isend(world, &data.zcorss, 1, 1, 10));
            reqs.push_back(mpi::isend(world, data.evec, 3, 1, 11));
            reqs.push_back(mpi::isend(world, &data.nspin, 1, 1, 12));
            reqs.push_back(mpi::isend(world, &data.numc, 1, 1, 13));
            mpi::waitall(reqs);
          } else {
            std::vector<mpi::Request> reqs;
            reqs.push_back(mpi::irecv(world, &data.local_id, 1, 0, 0));
            reqs.push_back(mpi::irecv(world, &data.jmt, 1, 0, 1));
            reqs.push_back(mpi::irecv(world, &data.jws, 1, 0, 2));
            reqs.push_back(mpi::irecv(world, &data.xstart, 1, 0, 3));
            reqs.push_back(mpi::irecv(world, &data.rmt, 1, 0, 4));
            reqs.push_back(mpi::irecv(world, data.header, 80, 0, 5));
            reqs.push_back(mpi::irecv(world, &data.alat, 1, 0, 6));
            reqs.push_back(mpi::irecv(world, &data.efermi, 1, 0, 7));
            reqs.push_back(mpi::irecv(world, &data.vdif, 1, 0, 8));
            reqs.push_back(mpi::irecv(world, &data.ztotss, 1, 0, 9));
            reqs.push_back(mpi::irecv(world, &data.zcorss, 1, 0, 10));
            reqs.push_back(mpi::irecv(world, data.evec, 3, 0, 11));
            reqs.push_back(mpi::irecv(world, &data.nspin, 1, 0, 12));
            reqs.push_back(mpi::irecv(world, &data.numc, 1, 0, 13));
            mpi::waitall(reqs);
          }
        }
        break;
      }
    }
  });
  return result.makespan();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cid::bench;
  const bool quick = quick_mode(argc, argv);
  print_header(
      "Ablation A3 - composite marshalling: Pack vs derived type vs "
      "field-per-message",
      "Transferring the 14-field single-atom scalar struct repeatedly; the\n"
      "derived type pays a one-time creation cost then wins per transfer.");

  print_row({"transfers", "pack(us)", "derived(us)", "per-field(us)",
             "derived-spd"},
            15);

  std::vector<int> counts = {1, 2, 4, 8, 16, 32, 64};
  if (quick) counts = {1, 8, 64};
  for (int count : counts) {
    const double pack = run_transfers(count, Marshal::Pack);
    const double derived = run_transfers(count, Marshal::DerivedType);
    const double per_field =
        run_transfers(count, Marshal::FieldPerMessage);
    print_row({std::to_string(count), fmt_us(pack), fmt_us(derived),
               fmt_us(per_field), fmt_x(pack / derived)},
              15);
  }

  std::printf(
      "\nShape check: at one transfer the derived type's creation cost\n"
      "shows; it amortizes over repeated transfers, after which the derived\n"
      "type is comparable to the hand-written Pack chain (Figure 3's result\n"
      "for the full atom payload) while being generated automatically, and\n"
      "both are several times faster than field-per-message.\n");
  return 0;
}
