// Ablation A2 - MPI vs SHMEM directive targets across message sizes.
//
// The paper attributes the 38x setEvec speedup to the MPI/SHMEM bandwidth
// and latency gap being "most prominent when transferring small messages
// (8 to 256 bytes)" [13,14]. This sweep shows the same directive program
// retargeted between MPI 2-sided and SHMEM as the per-message payload grows:
// a large small-message gap that narrows toward bandwidth-bound sizes.
#include <vector>

#include "bench/bench_util.hpp"
#include "core/core.hpp"
#include "rt/runtime.hpp"
#include "shmem/shmem.hpp"

namespace {

using namespace cid;
using core::Clauses;
using core::Region;
using core::Target;
using core::buf_n;

double run_sized(std::size_t bytes, Target target, int messages) {
  const auto model = simnet::MachineModel::cray_xk7_gemini();
  const std::size_t doubles = std::max<std::size_t>(1, bytes / sizeof(double));
  shmem::SymmetricHeap::set_default_capacity(
      std::max<std::size_t>(1u << 20,
                            2 * doubles * messages * sizeof(double)));
  auto result = rt::run(2, model, [&](rt::RankCtx& ctx) {
    double* recv_buf = shmem::malloc_of<double>(doubles *
                                                static_cast<std::size_t>(messages));
    std::vector<double> send_buf(doubles * static_cast<std::size_t>(messages),
                                 1.0);
    ctx.barrier();
    core::comm_parameters(
        Clauses()
            .sender(0)
            .receiver(1)
            .sendwhen("rank==0")
            .receivewhen("rank==1")
            .count(static_cast<core::ExprValue>(doubles))
            .max_comm_iter(messages)
            .target(target),
        [&](Region& region) {
          for (int p = 0; p < messages; ++p) {
            region.p2p(Clauses()
                           .sbuf(buf_n(&send_buf[doubles * p], doubles))
                           .rbuf(buf_n(&recv_buf[doubles * p], doubles)));
          }
        });
  });
  shmem::SymmetricHeap::set_default_capacity(
      shmem::SymmetricHeap::kDefaultCapacity);
  return result.makespan();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cid::bench;
  const bool quick = quick_mode(argc, argv);
  print_header(
      "Ablation A2 - message-size sweep, MPI vs SHMEM target",
      "Same directive region retargeted (target clause only); 32 messages\n"
      "per burst; the MPI/SHMEM gap vs per-message payload size.");

  print_row({"bytes/msg", "dir-mpi(us)", "dir-shmem(us)", "shmem-gain"}, 15);

  std::vector<std::size_t> sizes = {8,    24,   64,    256,   1024,
                                    4096, 16384, 65536, 262144};
  if (quick) sizes = {8, 256, 4096, 262144};
  const int messages = 32;

  for (std::size_t bytes : sizes) {
    const double mpi = run_sized(bytes, Target::Mpi2Side, messages);
    const double shmem_time = run_sized(bytes, Target::Shmem, messages);
    print_row({std::to_string(bytes), fmt_us(mpi), fmt_us(shmem_time),
               fmt_x(mpi / shmem_time)},
              15);
  }

  std::printf(
      "\nShape check: the SHMEM gain is largest in the paper's 8-256 byte\n"
      "regime and decays toward 1x as transfers become bandwidth-bound.\n");
  return 0;
}
