// bench_scale - WALL-CLOCK cost of running the runtime BIG: 1k / 4k / 10k
// ranks on one machine.
//
// The figure benches ask "is the virtual time right?"; bench_hotpath asks
// "how fast is one envelope?". This bench asks the scaling question: how
// long does the host take to *simulate* an O(10k)-rank program at all. It
// exercises the pooled fiber scheduler (10k ranks on CID_SIM_WORKERS OS
// threads), the sharded barrier, and the envelope arena — see the Scaling
// section of docs/PERF.md.
//
// Workloads (each also ships as a runnable example under examples/):
//   halo3d     3-D halo exchange, six neighbours per rank (examples/halo3d
//              is the directive form of the same pattern)
//   particle   particle migration on a ring: counts, then variable-size
//              payloads (examples/particle_exchange.cpp)
//   shuffle    all-to-all with fan-out capped at 64 peers per rank
//              (examples/shuffle.cpp)
//   rpc        request/reply fan-out, one server per 64 clients
//              (examples/rpc_fanout.cpp)
//
// Reported per (workload, ranks): wall seconds, delivered envelopes (exact,
// computed from the pattern), envelopes/sec, and ranks per second of wall
// time (how much world the host simulates per second, including rank
// spawn). Emits BENCH_scale.json (--out FILE); --quick / CID_BENCH_QUICK=1
// runs only the 1k-rank row of each workload (the CI gate —
// tools/check_bench.py — compares those against the committed JSON).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"

namespace {

using namespace cid;
using rt::RankCtx;
using simnet::MachineModel;
using Clock = std::chrono::steady_clock;

struct ScaleResult {
  std::string name;
  int ranks = 0;
  std::uint64_t envelopes = 0;  ///< payload envelopes the pattern delivers
  double seconds = 0.0;         ///< wall time of the whole rt::run
  rt::RunResult run;
};

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ---------------------------------------------------------------------------
// halo3d: six-neighbour exchange on a px x py x pz grid
// ---------------------------------------------------------------------------

struct Dims {
  int px = 1, py = 1, pz = 1;
};

Dims choose_dims(int nranks) {
  auto largest_divisor_at_most = [](int n, int cap) {
    for (int p = cap; p >= 1; --p) {
      if (n % p == 0) return p;
    }
    return 1;
  };
  Dims d;
  int cube = 1;
  while ((cube + 1) * (cube + 1) * (cube + 1) <= nranks) ++cube;
  d.px = largest_divisor_at_most(nranks, cube);
  int rest = nranks / d.px;
  int square = 1;
  while ((square + 1) * (square + 1) <= rest) ++square;
  d.py = largest_divisor_at_most(rest, square);
  d.pz = rest / d.py;
  return d;
}

ScaleResult halo3d(int nranks, int iters) {
  constexpr int kFace = 16;  // doubles per face
  const Dims dims = choose_dims(nranks);
  // Directed internal faces of the grid: every adjacency carries one
  // envelope per direction per iteration.
  const std::uint64_t adjacencies =
      static_cast<std::uint64_t>(dims.px - 1) * dims.py * dims.pz +
      static_cast<std::uint64_t>(dims.px) * (dims.py - 1) * dims.pz +
      static_cast<std::uint64_t>(dims.px) * dims.py * (dims.pz - 1);

  const auto start = Clock::now();
  auto run = rt::run(nranks, MachineModel::zero(), [&](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    const int me = ctx.rank();
    const int px = dims.px, py = dims.py, pz = dims.pz, pxy = px * py;
    const int x = me % px, y = (me / px) % py, z = me / pxy;

    // Direction d: 0:+x 1:-x 2:+y 3:-y 4:+z 5:-z; opposite(d) = d^1.
    const int neighbour[6] = {me + 1, me - 1, me + px, me - px, me + pxy,
                              me - pxy};
    const bool has[6] = {x < px - 1, x > 0, y < py - 1,
                         y > 0,      z < pz - 1, z > 0};

    std::vector<double> out(6 * kFace, 1.0 + me);
    std::vector<double> in(6 * kFace, 0.0);
    for (int it = 0; it < iters; ++it) {
      std::vector<mpi::Request> reqs;
      reqs.reserve(12);
      for (int d = 0; d < 6; ++d) {
        // The message arriving from neighbour[d] travels direction d^1.
        if (has[d]) {
          reqs.push_back(mpi::irecv(world, &in[d * kFace], kFace,
                                    neighbour[d], /*tag=*/d ^ 1));
        }
      }
      for (int d = 0; d < 6; ++d) {
        if (has[d]) {
          reqs.push_back(mpi::isend(world, &out[d * kFace], kFace,
                                    neighbour[d], /*tag=*/d));
        }
      }
      mpi::waitall(reqs);
      for (int i = 0; i < 6 * kFace; ++i) out[i] = 0.5 * (out[i] + in[i]);
      ctx.barrier();
    }
  });
  ScaleResult result;
  result.name = "halo3d";
  result.ranks = nranks;
  result.envelopes = 2 * adjacencies * static_cast<std::uint64_t>(iters);
  result.seconds = seconds_since(start);
  result.run = std::move(run);
  return result;
}

// ---------------------------------------------------------------------------
// particle: migration counts, then variable-size payloads, on a ring
// ---------------------------------------------------------------------------

ScaleResult particle(int nranks, int iters) {
  const auto start = Clock::now();
  auto run = rt::run(nranks, MachineModel::zero(), [&](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    const int me = ctx.rank();
    const int np = ctx.nranks();
    const int left = (me - 1 + np) % np;
    const int right = (me + 1) % np;

    std::vector<double> particles(64, me + 0.5);
    for (int it = 0; it < iters; ++it) {
      // Deterministic migration counts in [1, 8] per direction.
      auto migrating = [&](int dir) {
        std::uint32_t h = static_cast<std::uint32_t>(me * 2654435761u) ^
                          static_cast<std::uint32_t>(it * 40503u) ^
                          static_cast<std::uint32_t>(dir * 97u);
        h ^= h >> 16;
        return 1 + static_cast<int>(h % 8u);
      };
      int to_left = migrating(0);
      int to_right = migrating(1);
      const int have = static_cast<int>(particles.size());
      if (to_left + to_right > have) {
        to_left = have / 2;
        to_right = have - to_left;
      }
      int counts[2] = {to_left, to_right};
      int incoming[2] = {0, 0};
      // Tags: 0 = leftbound count, 1 = rightbound count, 2 = leftbound
      // payload, 3 = rightbound payload.
      mpi::Request reqs[4] = {
          mpi::irecv(world, &incoming[0], 1, left, 1),
          mpi::irecv(world, &incoming[1], 1, right, 0),
          mpi::isend(world, &counts[0], 1, left, 0),
          mpi::isend(world, &counts[1], 1, right, 1),
      };
      mpi::waitall(reqs);

      std::vector<double> from_left(incoming[0]);
      std::vector<double> from_right(incoming[1]);
      std::vector<double> leaving_left(particles.end() - to_left - to_right,
                                       particles.end() - to_right);
      std::vector<double> leaving_right(particles.end() - to_right,
                                        particles.end());
      particles.resize(particles.size() - to_left - to_right);
      mpi::Request data[4] = {
          mpi::irecv(world, from_left.data(), from_left.size(), left, 3),
          mpi::irecv(world, from_right.data(), from_right.size(), right, 2),
          mpi::isend(world, leaving_left.data(), leaving_left.size(), left,
                     2),
          mpi::isend(world, leaving_right.data(), leaving_right.size(),
                     right, 3),
      };
      mpi::waitall(data);
      particles.insert(particles.end(), from_left.begin(), from_left.end());
      particles.insert(particles.end(), from_right.begin(),
                       from_right.end());
    }
  });
  ScaleResult result;
  result.name = "particle";
  result.ranks = nranks;
  // Per iteration per rank: two counts out, two payloads out.
  result.envelopes = 4ull * nranks * static_cast<std::uint64_t>(iters);
  result.seconds = seconds_since(start);
  result.run = std::move(run);
  return result;
}

// ---------------------------------------------------------------------------
// shuffle: capped-fan-out all-to-all
// ---------------------------------------------------------------------------

ScaleResult shuffle(int nranks, int records) {
  const int fanout = nranks - 1 < 64 ? nranks - 1 : 64;
  const auto start = Clock::now();
  auto run = rt::run(nranks, MachineModel::zero(), [&](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    const int me = ctx.rank();
    const int np = ctx.nranks();
    const int stride = np / (fanout + 1) > 0 ? np / (fanout + 1) : 1;

    std::vector<double> outbox(static_cast<std::size_t>(fanout) * records,
                               me + 0.25);
    std::vector<double> inbox(outbox.size());
    std::vector<mpi::Request> reqs;
    reqs.reserve(2 * static_cast<std::size_t>(fanout));
    // peer_of(rank, k) = rank + (k+1)*stride + k (mod np) is a bijection of
    // rank for fixed k, so one wildcard receive per tag k is exact.
    for (int k = 0; k < fanout; ++k) {
      reqs.push_back(mpi::irecv(world, &inbox[k * records], records,
                                mpi::kAnySource, /*tag=*/k));
    }
    for (int k = 0; k < fanout; ++k) {
      const int peer = (me + (k + 1) * stride + k) % np;
      reqs.push_back(mpi::isend(world, &outbox[k * records], records, peer,
                                /*tag=*/k));
    }
    mpi::waitall(reqs);
  });
  ScaleResult result;
  result.name = "shuffle";
  result.ranks = nranks;
  result.envelopes = static_cast<std::uint64_t>(nranks) * fanout;
  result.seconds = seconds_since(start);
  result.run = std::move(run);
  return result;
}

// ---------------------------------------------------------------------------
// rpc: request/reply fan-out, one server per 64 clients
// ---------------------------------------------------------------------------

ScaleResult rpc(int nranks, int per_client) {
  const int servers0 = (nranks + 63) / 64;
  const int servers = servers0 < nranks ? servers0 : 1;
  const int clients = nranks - servers;
  const auto start = Clock::now();
  auto run = rt::run(nranks, MachineModel::zero(), [&](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    const int me = ctx.rank();
    if (me < servers) {
      int expected = 0;
      for (int c = 0; c < clients; ++c) {
        for (int i = 0; i < per_client; ++i) {
          if ((c + i) % servers == me) ++expected;
        }
      }
      double request[2];
      for (int handled = 0; handled < expected; ++handled) {
        const auto status =
            mpi::recv(world, request, 2, mpi::kAnySource, /*tag=*/0);
        const double reply = request[0] + request[1];
        mpi::send(world, &reply, 1, status.source, /*tag=*/1);
      }
    } else {
      const int c = me - servers;
      for (int i = 0; i < per_client; ++i) {
        const int target = (c + i) % servers;
        const double request[2] = {static_cast<double>(me),
                                   static_cast<double>(i)};
        mpi::send(world, request, 2, target, /*tag=*/0);
        double reply = 0.0;
        mpi::recv(world, &reply, 1, target, /*tag=*/1);
      }
    }
  });
  ScaleResult result;
  result.name = "rpc";
  result.ranks = nranks;
  result.envelopes =
      2ull * clients * static_cast<std::uint64_t>(per_client);
  result.seconds = seconds_since(start);
  result.run = std::move(run);
  return result;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

void write_json(const std::string& path,
                const std::vector<ScaleResult>& results, bool quick) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"scale\",\n  \"kind\": \"wall_clock\",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char buffer[512];
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\"name\": \"%s\", \"ranks\": %d, \"envelopes\": %llu, "
        "\"seconds\": %.6f, \"envelopes_per_sec\": %.1f, "
        "\"ranks_per_sec\": %.1f, \"pooled\": %s, \"workers\": %llu}%s\n",
        r.name.c_str(), r.ranks,
        static_cast<unsigned long long>(r.envelopes), r.seconds,
        static_cast<double>(r.envelopes) / r.seconds,
        static_cast<double>(r.ranks) / r.seconds,
        r.run.pooled ? "true" : "false",
        static_cast<unsigned long long>(r.run.sched_stats.workers),
        i + 1 < results.size() ? "," : "");
    out << buffer;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = cid::bench::quick_mode(argc, argv);
  std::string out_path = "BENCH_scale.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
  }

  cid::bench::print_header(
      "bench_scale - wall-clock cost of O(10k)-rank simulation",
      "pooled fiber scheduler + sharded barrier + envelope arena at scale");
  std::printf("(HOST wall-clock time - machine-dependent, not virtual)\n\n");

  const std::vector<int> sizes =
      quick ? std::vector<int>{1000} : std::vector<int>{1000, 4096, 10000};

  std::vector<ScaleResult> results;
  for (int n : sizes) {
    results.push_back(halo3d(n, /*iters=*/2));
    results.push_back(particle(n, /*iters=*/2));
    results.push_back(shuffle(n, /*records=*/4));
    results.push_back(rpc(n, /*per_client=*/4));
  }

  cid::bench::print_row(
      {"workload", "ranks", "envelopes", "seconds", "env/sec", "ranks/sec"},
      12);
  for (const auto& r : results) {
    char secs[32], eps[32], rps[32];
    std::snprintf(secs, sizeof(secs), "%.3f", r.seconds);
    std::snprintf(eps, sizeof(eps), "%.3g",
                  static_cast<double>(r.envelopes) / r.seconds);
    std::snprintf(rps, sizeof(rps), "%.3g",
                  static_cast<double>(r.ranks) / r.seconds);
    cid::bench::print_row({r.name, std::to_string(r.ranks),
                           std::to_string(r.envelopes), secs, eps, rps},
                          12);
  }
  const auto& last = results.back();
  std::printf("\nscheduler: %s, %llu workers, %llu fibers, %llu parks "
              "(last run)\n",
              last.run.pooled ? "pooled" : "thread-per-rank",
              static_cast<unsigned long long>(last.run.sched_stats.workers),
              static_cast<unsigned long long>(last.run.sched_stats.fibers),
              static_cast<unsigned long long>(last.run.sched_stats.parks));
  write_json(out_path, results, quick);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
