// Figure 3: "Experimental results for communication of single atom data".
//
// Paper setup: WL-LSMS on a Cray XK7, sixteen iron atoms, 33-337 processes;
// the distribution of each atom's potentials and electron densities from the
// privileged rank of every LIZ to the owning member, measured for the
// original MPI_Pack-based code, the directive translated to MPI (2-sided,
// derived datatype + consolidated Waitall), and the directive translated to
// SHMEM. Paper result: the three series are comparable.
#include <cstdlib>

#include "bench/bench_util.hpp"
#include "wllsms/driver.hpp"

int main(int argc, char** argv) {
  using namespace cid::wllsms;
  using namespace cid::bench;

  const bool quick = quick_mode(argc, argv);
  print_header(
      "Figure 3 - single atom data (potentials + electron densities)",
      "Distribution from each LIZ's privileged rank to the owning members;\n"
      "16 Fe atoms, 16 LSMS instances, nprocs = 1 + 16k as in the paper.");

  print_row({"nprocs", "original(us)", "dir-mpi(us)", "dir-shmem(us)",
             "mpi/orig", "shmem/orig"});

  std::vector<int> sweep = Topology::paper_nprocs_sweep();
  if (quick) sweep = {33, 113, 209, 337};

  for (int nprocs : sweep) {
    ExperimentConfig config;
    config.nprocs = nprocs;
    config.num_lsms = 16;
    config.natoms = 16;

    const double original =
        run_single_atom_distribution(config, Variant::Original);
    const double mpi =
        run_single_atom_distribution(config, Variant::DirectiveMpi);
    const double shmem =
        run_single_atom_distribution(config, Variant::DirectiveShmem);

    print_row({std::to_string(nprocs), fmt_us(original), fmt_us(mpi),
               fmt_us(shmem), fmt_x(mpi / original),
               fmt_x(shmem / original)});
  }

  std::printf(
      "\nPaper shape check: all three series should be of comparable\n"
      "magnitude (no order-of-magnitude separation), growing with nprocs.\n");
  return 0;
}
