// Figure 5: "Execution time for directive communication/computation
// overlap".
//
// Paper setup: the spin scatter plus the initial energy-value computation of
// calculateCoreStates, with the computation projected to run 10x faster (the
// GPU port). Compared: the original communication followed by the (10x
// faster) computation, vs the directive version overlapping the computation
// with the in-flight transfers. With the paper's 19:1 compute-to-
// communication ratio, computation dominates; the overlap saves at most the
// communication time, which the 10x compute speedup makes visible.
#include <cstdlib>

#include "bench/bench_util.hpp"
#include "wllsms/driver.hpp"

int main(int argc, char** argv) {
  using namespace cid::wllsms;
  using namespace cid::bench;

  const bool quick = quick_mode(argc, argv);
  print_header(
      "Figure 5 - communication/computation overlap with 10x faster compute",
      "setEvec scatter + initial calculateCoreStates energy computation;\n"
      "original = sequential comm then compute; directive = overlapped.\n"
      "gpu10 columns use the projected 10x-faster computation.");

  print_row({"nprocs", "orig-cpu(us)", "dir-cpu(us)", "orig-gpu10(us)",
             "dir-gpu10(us)", "gpu10-gain"},
            15);

  std::vector<int> sweep = Topology::paper_nprocs_sweep();
  if (quick) sweep = {33, 113, 209, 337};

  for (int nprocs : sweep) {
    ExperimentConfig cpu;
    cpu.nprocs = nprocs;
    cpu.num_lsms = 16;
    cpu.natoms = 16;
    cpu.wl_steps = quick ? 6 : 12;

    ExperimentConfig gpu = cpu;
    gpu.compute.gpu_speedup = 10.0;

    const double orig_cpu = run_spin_with_compute(cpu, Variant::Original);
    const double dir_cpu =
        run_spin_with_compute(cpu, Variant::DirectiveMpi);
    const double orig_gpu = run_spin_with_compute(gpu, Variant::Original);
    const double dir_gpu =
        run_spin_with_compute(gpu, Variant::DirectiveMpi);

    print_row({std::to_string(nprocs), fmt_us(orig_cpu), fmt_us(dir_cpu),
               fmt_us(orig_gpu), fmt_us(dir_gpu),
               fmt_x(orig_gpu / dir_gpu)},
              15);
  }

  std::printf(
      "\nPaper shape check: with CPU-speed compute the two versions are\n"
      "close (compute dominates 19:1); with the 10x GPU projection the\n"
      "directive's overlap removes most of the now-visible communication\n"
      "time, so the gpu10 gain exceeds the cpu gain.\n");
  return 0;
}
