// bench_tune - tuned vs untuned A/B on the cid::tune decision paths.
//
// Each workload runs three times in one process: CID_TUNE=off (the static
// lowering), CID_TUNE=record (builds the site profile), CID_TUNE=on (the
// tuner steers dispatch from that profile). The off and on rows are what
// lands in BENCH_tune.json — committed next to BENCH_scale.json and gated
// by tools/check_bench.py in the `tune` CI job.
//
// Workloads (one per tuned decision, docs/TUNING.md):
//   agg_ring     many small same-destination messages in one-shot regions;
//                tuned runs batch them per destination (aggregation)
//   pack_struct  non-contiguous padded structs; tuned runs ship the whole
//                extent as flat bytes when the measured copy rates say the
//                memcpy wins (flat-copy)
//   auto_shmem   target(auto) over symmetric buffers with small payloads;
//                the profile steers the site onto the SHMEM lowering
//
// Reported per (workload, mode): the virtual makespan (deterministic, the
// gated metric — envelopes_per_sec is logical envelopes over VIRTUAL
// seconds, so CI reproduces it exactly), plus host wall seconds for
// context. The `speedup` field on tuned rows is virtual envelopes/sec
// relative to the untuned row of the same workload. Note pack_struct's win
// is host-side (the measured 45x flat-vs-plan copy-rate gap); its wire
// bytes grow by the extent/payload ratio, so its virtual speedup is
// expected to hover just below 1 — the tuner is trading modeled wire time
// for measured host packing time there, which shows up in wall_seconds.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/core.hpp"
#include "rt/runtime.hpp"
#include "shmem/shmem.hpp"

/// Non-contiguous element for the pack workload: 13 payload bytes spread
/// over a 24-byte extent (the dense case where flat-copy wins).
struct BenchPadded {
  char c;
  double d;
  int i;
};
CID_REFLECT_STRUCT(BenchPadded, c, d, i)

namespace {

using namespace cid::core;
using cid::rt::RankCtx;
using cid::simnet::MachineModel;
using Clock = std::chrono::steady_clock;

struct TuneResult {
  std::string name;
  std::string mode;             ///< "untuned" | "tuned"
  int ranks = 0;
  std::uint64_t envelopes = 0;  ///< logical messages the pattern delivers
  double seconds = 0.0;         ///< host wall time of the whole rt::run
  double makespan = 0.0;        ///< virtual seconds (deterministic)
  double speedup = 1.0;         ///< envelopes/sec vs the untuned row
};

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// The gated rate: logical envelopes over the deterministic virtual
/// makespan. Wall time stays in the report for context but is never gated.
double env_per_sec(const TuneResult& r) {
  return r.makespan > 0.0 ? static_cast<double>(r.envelopes) / r.makespan
                          : 0.0;
}

/// Run `fn` under one CID_TUNE mode ("off" | "on") and measure it; `label`
/// is the row suffix ("untuned" | "tuned") in the report.
TuneResult measure(const std::string& name, const char* label,
                   const char* env_mode, int nranks, std::uint64_t envelopes,
                   const cid::rt::RankFn& fn) {
  ::setenv("CID_TUNE", env_mode, 1);
  const auto start = Clock::now();
  auto run = cid::rt::run(nranks, MachineModel::cray_xk7_gemini(), fn);
  TuneResult r;
  r.name = name;
  r.mode = label;
  r.ranks = nranks;
  r.envelopes = envelopes;
  r.seconds = seconds_since(start);
  r.makespan = run.makespan();
  return r;
}

/// The record pass between the A and B rows (not reported: its wall time
/// includes probe and calibration overhead by design).
void record(int nranks, const cid::rt::RankFn& fn) {
  ::setenv("CID_TUNE", "record", 1);
  cid::rt::run(nranks, MachineModel::cray_xk7_gemini(), fn);
}

// ---------------------------------------------------------------------------
// agg_ring: 16 small messages per rank per iteration, one-shot regions.
// ---------------------------------------------------------------------------

cid::rt::RankFn agg_ring_body(int iters) {
  return [iters](RankCtx& ctx) {
    constexpr int kMsgs = 16;
    constexpr int kDoubles = 8;  // 64 B payload, well under the threshold
    double send[kMsgs][kDoubles];
    double recv[kMsgs][kDoubles];
    for (int m = 0; m < kMsgs; ++m) {
      for (int i = 0; i < kDoubles; ++i) {
        send[m][i] = ctx.rank() * 1000.0 + m + i * 0.125;
      }
    }
    for (int it = 0; it < iters; ++it) {
      comm_parameters(Clauses()
                          .sender("(rank-1+nprocs)%nprocs")
                          .receiver("(rank+1)%nprocs"),
                      [&](Region& region) {
                        for (int m = 0; m < kMsgs; ++m) {
                          region.p2p(Clauses()
                                         .sbuf(buf(send[m]))
                                         .rbuf(buf(recv[m])));
                        }
                      });
    }
  };
}

// ---------------------------------------------------------------------------
// pack_struct: non-contiguous elements, pack-plan vs flat-copy.
// ---------------------------------------------------------------------------

cid::rt::RankFn pack_struct_body(int iters, int count) {
  return [iters, count](RankCtx& ctx) {
    std::vector<BenchPadded> send(static_cast<std::size_t>(count));
    std::vector<BenchPadded> recv(static_cast<std::size_t>(count));
    for (int k = 0; k < count; ++k) {
      send[static_cast<std::size_t>(k)] = {
          static_cast<char>('a' + (ctx.rank() + k) % 26),
          ctx.rank() * 2.5 + k, ctx.rank() * 1000 + k};
    }
    for (int it = 0; it < iters; ++it) {
      comm_parameters(Clauses()
                          .sender("(rank-1+nprocs)%nprocs")
                          .receiver("(rank+1)%nprocs")
                          .count(count),
                      [&](Region& region) {
                        region.p2p(Clauses()
                                       .sbuf(buf(send.data(), "send"))
                                       .rbuf(buf(recv.data(), "recv")));
                      });
    }
  };
}

// ---------------------------------------------------------------------------
// auto_shmem: target(auto) over symmetric buffers, small payloads.
// ---------------------------------------------------------------------------

cid::rt::RankFn auto_shmem_body(int iters) {
  return [iters](RankCtx& ctx) {
    constexpr int kDoubles = 8;  // 64 B: the SHMEM small-message sweet spot
    namespace shmem = cid::shmem;
    double* send = shmem::malloc_of<double>(kDoubles);
    double* recv = shmem::malloc_of<double>(kDoubles);
    for (int i = 0; i < kDoubles; ++i) {
      send[i] = ctx.rank() * 10.0 + i;
      recv[i] = 0.0;
    }
    for (int it = 0; it < iters; ++it) {
      comm_parameters(Clauses()
                          .sender("(rank-1+nprocs)%nprocs")
                          .receiver("(rank+1)%nprocs")
                          .target(Target::Auto)
                          .count(kDoubles),
                      [&](Region& region) {
                        region.p2p(Clauses()
                                       .sbuf(buf_n(send, kDoubles))
                                       .rbuf(buf_n(recv, kDoubles)));
                      });
    }
  };
}

// ---------------------------------------------------------------------------

void write_json(const std::string& path,
                const std::vector<TuneResult>& results, bool quick) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"tune\",\n  \"kind\": \"virtual_time\",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char buffer[512];
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\"name\": \"%s[%s]\", \"ranks\": %d, \"envelopes\": %llu, "
        "\"virtual_seconds\": %.9f, \"envelopes_per_sec\": %.1f, "
        "\"wall_seconds\": %.6f, \"speedup\": %.3f}%s\n",
        r.name.c_str(), r.mode.c_str(), r.ranks,
        static_cast<unsigned long long>(r.envelopes), r.makespan,
        env_per_sec(r), r.seconds, r.speedup,
        i + 1 < results.size() ? "," : "");
    out << buffer;
  }
  out << "  ]\n}\n";
}

/// Run one workload's off/record/on cycle and append the A/B rows.
void run_workload(std::vector<TuneResult>& results, const std::string& name,
                  int nranks, std::uint64_t envelopes,
                  const cid::rt::RankFn& fn) {
  TuneResult untuned = measure(name, "untuned", "off", nranks, envelopes, fn);
  record(nranks, fn);
  TuneResult tuned = measure(name, "tuned", "on", nranks, envelopes, fn);
  ::setenv("CID_TUNE", "off", 1);
  tuned.speedup = env_per_sec(untuned) > 0.0
                      ? env_per_sec(tuned) / env_per_sec(untuned)
                      : 1.0;
  results.push_back(untuned);
  results.push_back(tuned);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = cid::bench::quick_mode(argc, argv);
  std::string out_path = "BENCH_tune.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
  }

  cid::bench::print_header(
      "bench_tune - measurement-driven lowering, tuned vs untuned",
      "aggregation, flat-copy and target(auto) A/B from recorded profiles");
  std::printf("(wall seconds are HOST time; virtual makespans are "
              "deterministic)\n\n");

  // Quick mode trims iterations but keeps the rank count: CI gates rows by
  // (name, ranks), so the quick rows must key-match the committed capture.
  // Not too few iterations, though — one-time costs (datatype creation)
  // amortize into the per-envelope rate, and a short run must stay within
  // the gate tolerance of the committed full run.
  const int ranks = 256;
  const int iters = quick ? 25 : 50;

  std::vector<TuneResult> results;
  // Every rank sends to one neighbour: envelopes = ranks * msgs * iters.
  run_workload(results, "agg_ring", ranks,
               static_cast<std::uint64_t>(ranks) * 16 * iters,
               agg_ring_body(iters));
  run_workload(results, "pack_struct", ranks,
               static_cast<std::uint64_t>(ranks) * iters,
               pack_struct_body(iters, /*count=*/512));
  run_workload(results, "auto_shmem", ranks,
               static_cast<std::uint64_t>(ranks) * iters,
               auto_shmem_body(iters));

  cid::bench::print_row({"workload", "ranks", "envelopes", "vmakespan(us)",
                         "env/vsec", "wall(s)", "speedup"},
                        14);
  for (const auto& r : results) {
    char secs[32], eps[32], mk[32], sp[32];
    std::snprintf(secs, sizeof(secs), "%.3f", r.seconds);
    std::snprintf(eps, sizeof(eps), "%.3g", env_per_sec(r));
    std::snprintf(mk, sizeof(mk), "%.2f", r.makespan * 1e6);
    std::snprintf(sp, sizeof(sp), "%.2fx", r.speedup);
    cid::bench::print_row({r.name + "[" + r.mode + "]",
                           std::to_string(r.ranks),
                           std::to_string(r.envelopes), mk, eps, secs, sp},
                          14);
  }

  write_json(out_path, results, quick);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
