// bench_explore - DPOR vs naive schedule enumeration, A/B on the model
// checker's own workloads.
//
// Each workload runs twice through cid::explore::explore_source: once with
// the DPOR lowest-rank reduction (the default) and once branching naively
// over every (rank, message) candidate pair. Execution and decision counts
// are fully deterministic — the schedule tree is a pure function of the
// program — so the committed BENCH_explore.json reproduces exactly on any
// host; wall seconds stay in the report for context only.
//
// The bench gates itself: it exits nonzero if DPOR explores as many (or
// more) executions than naive on any multi-receiver workload, or if the two
// modes disagree on the diagnostic IDs found (reduction must never cost
// findings).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "explore/explore.hpp"

namespace {

using Clock = std::chrono::steady_clock;

// Two wildcard-receiver ranks, two in-flight candidates each, one
// synchronization scope — the minimal shape where the lowest-rank rule
// prunes (same as tests/explore_test.cpp).
constexpr const char* kCrossfire2 = R"(
int a[8]; int b[8]; int c[8]; int d[8];
int k;
void w0(); void w1(); void w2(); void w3();
void step() {
#pragma comm_parameters count(4)
  {
#pragma comm_p2p sbuf(a) rbuf(b) count(4) receiver(1) sendwhen(rank==0) sender(k) receivewhen(rank==1)
  { w0(); }
#pragma comm_p2p sbuf(a) rbuf(d) count(4) receiver(2) sendwhen(rank==0) sender(k) receivewhen(rank==2)
  { w1(); }
#pragma comm_p2p sbuf(c) rbuf(b) count(4) receiver(1) sendwhen(rank==2) sender(k) receivewhen(rank==1)
  { w2(); }
#pragma comm_p2p sbuf(c) rbuf(d) count(4) receiver(2) sendwhen(rank==1) sender(k) receivewhen(rank==2)
  { w3(); }
  }
}
)";

// Three wildcard-receiver ranks, two candidates each: the naive candidate
// product grows combinatorially while DPOR stays linear in receivers.
constexpr const char* kCrossfire3 = R"(
int a[8]; int b[8]; int c[8]; int d[8]; int e[8]; int f[8];
int k;
void w0(); void w1(); void w2(); void w3(); void w4(); void w5();
void step() {
#pragma comm_parameters count(4)
  {
#pragma comm_p2p sbuf(a) rbuf(b) count(4) receiver(1) sendwhen(rank==0) sender(k) receivewhen(rank==1)
  { w0(); }
#pragma comm_p2p sbuf(a) rbuf(d) count(4) receiver(2) sendwhen(rank==0) sender(k) receivewhen(rank==2)
  { w1(); }
#pragma comm_p2p sbuf(a) rbuf(f) count(4) receiver(3) sendwhen(rank==0) sender(k) receivewhen(rank==3)
  { w2(); }
#pragma comm_p2p sbuf(c) rbuf(b) count(4) receiver(1) sendwhen(rank==2) sender(k) receivewhen(rank==1)
  { w3(); }
#pragma comm_p2p sbuf(c) rbuf(d) count(4) receiver(2) sendwhen(rank==3) sender(k) receivewhen(rank==2)
  { w4(); }
#pragma comm_p2p sbuf(e) rbuf(f) count(4) receiver(3) sendwhen(rank==1) sender(k) receivewhen(rank==3)
  { w5(); }
  }
}
)";

// Guard branching only (no simultaneous wildcard candidates): DPOR and
// naive must coincide exactly — the reduction only prunes commuting
// wildcard resolutions, never guard or value branches.
constexpr const char* kGuardedRing = R"(
int a[8]; int b[8];
int k;
void exchange();
void step() {
#pragma comm_p2p sbuf(a) rbuf(b) count(4) receiver((rank+1)%nprocs) sender((rank+nprocs-1)%nprocs) sendwhen(k>0) receivewhen(rank>=0)
  { exchange(); }
}
)";

struct Workload {
  const char* name;
  const char* source;
  int nprocs;
  bool reduction_expected;  ///< DPOR must beat naive here
};

struct Row {
  std::string name;
  std::string mode;  ///< "dpor" | "naive"
  int nprocs = 0;
  int executions = 0;
  long long decisions = 0;
  int max_depth = 0;
  double wall_seconds = 0.0;
  std::set<std::string> ids;
};

Row run_one(const Workload& workload, bool dpor) {
  cid::explore::Options options;
  options.nprocs = workload.nprocs;
  options.dpor = dpor;
  options.max_executions = 4096;
  const auto start = Clock::now();
  auto result = cid::explore::explore_source(workload.source, options);
  const std::chrono::duration<double> wall = Clock::now() - start;
  Row row;
  row.name = workload.name;
  row.mode = dpor ? "dpor" : "naive";
  row.nprocs = workload.nprocs;
  row.wall_seconds = wall.count();
  if (!result.is_ok()) {
    std::fprintf(stderr, "bench_explore: %s failed: %s\n", workload.name,
                 result.status().to_string().c_str());
    std::exit(1);
  }
  row.executions = result.value().executions;
  row.decisions = result.value().decisions;
  row.max_depth = result.value().max_depth;
  if (result.value().truncated) {
    std::fprintf(stderr, "bench_explore: %s [%s] truncated at %d executions\n",
                 workload.name, row.mode.c_str(), row.executions);
    std::exit(1);
  }
  for (const auto& d : result.value().report.diagnostics) row.ids.insert(d.id);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_explore [--quick] [--out FILE]\n");
      return 2;
    }
  }

  std::vector<Workload> workloads = {
      {"crossfire2", kCrossfire2, 3, true},
      {"crossfire3", kCrossfire3, 4, true},
      {"guarded-ring", kGuardedRing, 3, false},
  };
  if (!quick) {
    workloads.push_back({"crossfire2@4", kCrossfire2, 4, true});
    workloads.push_back({"guarded-ring@4", kGuardedRing, 4, false});
  }

  std::printf("%-16s %-6s %8s %12s %10s %8s %12s\n", "workload", "mode",
              "nprocs", "executions", "decisions", "depth", "wall(s)");
  std::vector<Row> rows;
  int failures = 0;
  for (const Workload& workload : workloads) {
    const Row dpor = run_one(workload, /*dpor=*/true);
    const Row naive = run_one(workload, /*dpor=*/false);
    for (const Row* row : {&dpor, &naive}) {
      std::printf("%-16s %-6s %8d %12d %10lld %8d %12.4f\n", row->name.c_str(),
                  row->mode.c_str(), row->nprocs, row->executions,
                  row->decisions, row->max_depth, row->wall_seconds);
      rows.push_back(*row);
    }
    if (dpor.ids != naive.ids) {
      std::fprintf(stderr,
                   "bench_explore: %s: DPOR and naive disagree on findings\n",
                   workload.name);
      ++failures;
    }
    if (workload.reduction_expected && dpor.executions >= naive.executions) {
      std::fprintf(stderr,
                   "bench_explore: %s: no reduction (dpor %d vs naive %d)\n",
                   workload.name, dpor.executions, naive.executions);
      ++failures;
    }
    if (!workload.reduction_expected && dpor.executions != naive.executions) {
      std::fprintf(stderr,
                   "bench_explore: %s: modes diverged where they must "
                   "coincide (dpor %d vs naive %d)\n",
                   workload.name, dpor.executions, naive.executions);
      ++failures;
    }
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "bench_explore: cannot write %s\n",
                   out_path.c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"explore\",\n  \"kind\": \"schedule_counts\",\n"
        << "  \"quick\": " << (quick ? "true" : "false")
        << ",\n  \"workloads\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      char line[256];
      std::snprintf(line, sizeof(line),
                    "    {\"name\": \"%s[%s]\", \"nprocs\": %d, "
                    "\"executions\": %d, \"decisions\": %lld, "
                    "\"max_depth\": %d, \"wall_seconds\": %.6f}%s\n",
                    row.name.c_str(), row.mode.c_str(), row.nprocs,
                    row.executions, row.decisions, row.max_depth,
                    row.wall_seconds, i + 1 < rows.size() ? "," : "");
      out << line;
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (failures > 0) {
    std::fprintf(stderr, "bench_explore: %d gate failure(s)\n", failures);
    return 1;
  }
  return 0;
}
