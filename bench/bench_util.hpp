// Shared helpers for the figure-reproduction benches. All times are VIRTUAL
// seconds from the machine model — deterministic, independent of the host.
//
// Every bench built on these helpers honours CID_TRACE_OUT=<file>: because
// each measured configuration goes through rt::run, setting the variable
// exports a Perfetto-loadable virtual-time trace of the (whole) bench run
// with embedded per-directive metrics — see docs/OBSERVABILITY.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace cid::bench {

/// Print one row of pipe-separated columns with fixed widths.
inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& cell : cells) {
    std::printf("%*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string fmt_us(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", seconds * 1e6);
  return buffer;
}

inline std::string fmt_x(double ratio) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2fx", ratio);
  return buffer;
}

inline void print_header(const char* title, const char* description) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n%s\n", title, description);
  std::printf("(virtual time from the calibrated Cray-XK7/Gemini model; "
              "deterministic)\n");
  std::printf("==============================================================\n");
}

/// Label recorded in emitted JSON when a bench was run against a baseline
/// capture (--baseline FILE). The label — not the local filesystem path,
/// which is machine-specific noise — is what gets committed in BENCH_*.json.
inline constexpr const char* kBaselineLabel = "pre-change-tree";

/// True when the benches should run a reduced sweep (CID_BENCH_QUICK=1 or
/// --quick on the command line).
inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") return true;
  }
  const char* env = std::getenv("CID_BENCH_QUICK");
  return env != nullptr && std::string(env) == "1";
}

}  // namespace cid::bench
