// Ablation A5 - the collective-directive extension (paper Section V future
// work): expressing a one-to-many distribution as ONE comm_collective
// (binomial tree) vs the flat loop of comm_p2p directives a programmer
// writes without collective support. Shows why the paper wants collective
// patterns: the tree scales logarithmically, the flat loop linearly.
#include <vector>

#include "bench/bench_util.hpp"
#include "core/core.hpp"
#include "rt/runtime.hpp"

namespace {

using namespace cid;
using core::Clauses;
using core::Pattern;
using core::Region;

double run_broadcast(int nranks, bool use_collective, std::size_t count) {
  const auto model = simnet::MachineModel::cray_xk7_gemini();
  auto result = rt::run(nranks, model, [&](rt::RankCtx& ctx) {
    std::vector<double> payload(count, 1.0);
    std::vector<double> incoming(count);
    if (use_collective) {
      core::comm_collective(Clauses()
                                .pattern(Pattern::OneToMany)
                                .root(0)
                                .count(static_cast<core::ExprValue>(count))
                                .sbuf(core::buf(payload))
                                .rbuf(core::buf(incoming)));
      return;
    }
    // Flat: the root sends to every rank with one guarded p2p per peer.
    const int me = ctx.rank();
    core::comm_parameters(
        Clauses().sender(0).count(static_cast<core::ExprValue>(count))
            .max_comm_iter(nranks),
        [&](Region& region) {
          for (int dest = 1; dest < ctx.nranks(); ++dest) {
            region.p2p(
                Clauses()
                    .receiver(dest)
                    .sendwhen([me]() -> core::ExprValue { return me == 0; })
                    .receivewhen(
                        [me, dest]() -> core::ExprValue { return me == dest; })
                    .sbuf(core::buf(payload))
                    .rbuf(core::buf(incoming)));
          }
        });
  });
  return result.makespan();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cid::bench;
  const bool quick = quick_mode(argc, argv);
  print_header(
      "Ablation A5 - collective directive (tree) vs flat p2p loop",
      "One-to-many distribution of 64 doubles: comm_collective lowers to a\n"
      "binomial-tree broadcast; the flat alternative is a loop of guarded\n"
      "comm_p2p directives from the root.");

  print_row({"nranks", "flat-p2p(us)", "collective(us)", "tree-gain"}, 16);

  std::vector<int> sizes = {4, 8, 16, 32, 64, 128, 256};
  if (quick) sizes = {8, 64, 256};
  for (int nranks : sizes) {
    const double flat = run_broadcast(nranks, false, 64);
    const double tree = run_broadcast(nranks, true, 64);
    print_row({std::to_string(nranks), fmt_us(flat), fmt_us(tree),
               fmt_x(flat / tree)},
              16);
  }

  std::printf(
      "\nShape check: the flat loop grows linearly with the group size (the\n"
      "root injects every message); the collective's binomial tree grows\n"
      "logarithmically, so the gain widens with scale.\n");
  return 0;
}
