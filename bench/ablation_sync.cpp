// Ablation A1 - synchronization strategies for a burst of small messages.
//
// Decomposes the paper's Figure 4 effect: per-request MPI_Wait loop vs one
// MPI_Waitall vs the directive's consolidated region-end synchronization
// with persistent (compiler-hoisted) call generation, as the number of
// messages per burst grows.
#include <vector>

#include "bench/bench_util.hpp"
#include "core/core.hpp"
#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"

namespace {

using namespace cid;
using core::Clauses;
using core::Region;
using core::buf;

enum class Sync { WaitLoop, Waitall, Directive };

double run_burst(int messages, Sync sync, int repeats) {
  const auto model = simnet::MachineModel::cray_xk7_gemini();
  auto result = rt::run(2, model, [&](rt::RankCtx& ctx) {
    std::vector<double> data(3 * static_cast<std::size_t>(messages));
    auto world = mpi::Comm::world();
    for (int r = 0; r < repeats; ++r) {
      if (sync == Sync::Directive) {
        core::comm_parameters(
            Clauses()
                .sender(0)
                .receiver(1)
                .sendwhen("rank==0")
                .receivewhen("rank==1")
                .count(3)
                .max_comm_iter(messages),
            [&](Region& region) {
              for (int p = 0; p < messages; ++p) {
                region.p2p(Clauses()
                               .sbuf(buf(&data[3 * p]))
                               .rbuf(buf(&data[3 * p])));
              }
            });
        continue;
      }
      std::vector<mpi::Request> requests;
      if (ctx.rank() == 0) {
        for (int p = 0; p < messages; ++p) {
          requests.push_back(mpi::isend(world, &data[3 * p], 3, 1, p));
        }
      } else {
        for (int p = 0; p < messages; ++p) {
          requests.push_back(mpi::irecv(world, &data[3 * p], 3, 0, p));
        }
      }
      if (sync == Sync::WaitLoop) {
        for (auto& request : requests) mpi::wait(request);
      } else {
        mpi::waitall(requests);
      }
    }
  });
  return result.makespan() / repeats;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cid::bench;
  const bool quick = quick_mode(argc, argv);
  print_header(
      "Ablation A1 - synchronization consolidation",
      "One sender, one receiver, bursts of 24-byte messages; time per burst\n"
      "for per-request Wait loop / one Waitall / directive region (persistent\n"
      "calls + one region-end Waitall).");

  print_row({"messages", "wait-loop(us)", "waitall(us)", "directive(us)",
             "waitall-spd", "directive-spd"},
            15);

  const int repeats = quick ? 8 : 16;
  for (int messages : {4, 8, 16, 32, 64, 128, 256}) {
    const double loop = run_burst(messages, Sync::WaitLoop, repeats);
    const double waitall = run_burst(messages, Sync::Waitall, repeats);
    const double directive = run_burst(messages, Sync::Directive, repeats);
    print_row({std::to_string(messages), fmt_us(loop), fmt_us(waitall),
               fmt_us(directive), fmt_x(loop / waitall),
               fmt_x(loop / directive)},
              15);
  }

  std::printf(
      "\nShape check: both speedups grow with burst size; the directive\n"
      "adds a further constant factor over plain Waitall (hoisted call\n"
      "generation), matching the paper's 2.6x-vs-4x decomposition.\n");
  return 0;
}
