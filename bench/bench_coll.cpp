// bench_coll - collective engine vs pre-engine algorithms, A/B at scale.
//
// Each collective runs twice in one process: once with CID_COLL forcing the
// algorithms the repo shipped before the cid::mpi::coll engine existed
// (flat gather/scatter/alltoall, ring allgather, reduce+bcast allreduce,
// binomial bcast/reduce), and once with the engine's cost-model selection.
// Both rows land in BENCH_coll.json and CI gates the fresh capture against
// the committed one with tools/check_bench.py.
//
// The gated rate is rank-collectives over the VIRTUAL makespan
// (deterministic: the same machine model and rank count reproduce it
// exactly, on any host, under either scheduler). Wall seconds stay in the
// report for context only.
//
// Rank counts follow the scale suite (1k and 4k). The two O(P^2)-message
// baselines — ring allgather and the flat alltoall request storm — are
// benched at 1k only: simulating their 4k-rank baseline costs minutes of
// host time to prove a point the 1k row already makes, and the engine rows
// would dwarf them by an even wider margin at 4k.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "mpi/mpi.hpp"
#include "rt/runtime.hpp"

namespace {

using cid::rt::RankCtx;
using cid::simnet::MachineModel;
namespace mpi = cid::mpi;
using Clock = std::chrono::steady_clock;

/// The algorithms every collective ran before the engine landed.
constexpr const char* kPreEngine =
    "bcast:binomial,gather:flat,scatter:flat,allgather:ring,alltoall:flat,"
    "reduce:binomial,allreduce:reduce_bcast";

struct CollResult {
  std::string name;
  std::string mode;             ///< "baseline" | "engine"
  int ranks = 0;
  std::uint64_t envelopes = 0;  ///< rank-collectives: ranks * iterations
  double seconds = 0.0;         ///< host wall time (context only)
  double makespan = 0.0;        ///< virtual seconds (deterministic, gated)
  double speedup = 1.0;         ///< vs the baseline row (virtual time)
};

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double env_per_sec(const CollResult& r) {
  return r.makespan > 0.0 ? static_cast<double>(r.envelopes) / r.makespan
                          : 0.0;
}

CollResult measure(const std::string& name, const char* mode,
                   const char* coll_env, int nranks, int iters,
                   const cid::rt::RankFn& fn) {
  if (coll_env != nullptr) {
    ::setenv("CID_COLL", coll_env, 1);
  } else {
    ::unsetenv("CID_COLL");
  }
  std::fprintf(stderr, "  running %s[%s] @ %d ranks...\n", name.c_str(), mode,
               nranks);
  const auto start = Clock::now();
  auto run = cid::rt::run(nranks, MachineModel::cray_xk7_gemini(), fn);
  ::unsetenv("CID_COLL");
  CollResult r;
  r.name = name;
  r.mode = mode;
  r.ranks = nranks;
  r.envelopes = static_cast<std::uint64_t>(nranks) * iters;
  r.seconds = seconds_since(start);
  r.makespan = run.makespan();
  return r;
}

void run_pair(std::vector<CollResult>& results, const std::string& name,
              int nranks, int iters, const cid::rt::RankFn& fn) {
  CollResult baseline = measure(name, "baseline", kPreEngine, nranks, iters, fn);
  CollResult engine = measure(name, "engine", nullptr, nranks, iters, fn);
  engine.speedup = env_per_sec(baseline) > 0.0
                       ? env_per_sec(engine) / env_per_sec(baseline)
                       : 1.0;
  results.push_back(baseline);
  results.push_back(engine);
}

// ---------------------------------------------------------------------------
// Workload bodies. Payloads are small enough that 4096 simulated ranks fit
// comfortably in host memory; each body verifies one element so a broken
// algorithm fails the bench instead of producing a fast wrong answer.
// ---------------------------------------------------------------------------

cid::rt::RankFn bcast_body(int iters) {
  return [iters](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    std::vector<double> vec(8);
    for (int it = 0; it < iters; ++it) {
      if (ctx.rank() == 0) std::iota(vec.begin(), vec.end(), it * 1.0);
      mpi::bcast(world, vec.data(), vec.size(), 0);
      if (vec[7] != it + 7.0) std::abort();
    }
  };
}

cid::rt::RankFn gather_body(int iters) {
  return [iters](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    std::vector<int> mine(16, ctx.rank());
    std::vector<int> all;
    if (ctx.rank() == 0) {
      all.resize(mine.size() * static_cast<std::size_t>(ctx.nranks()));
    }
    for (int it = 0; it < iters; ++it) {
      mpi::gather(world, mine.data(), mine.size(),
                  ctx.rank() == 0 ? all.data() : nullptr, 0);
      if (ctx.rank() == 0 && all[all.size() - 1] != ctx.nranks() - 1) {
        std::abort();
      }
    }
  };
}

cid::rt::RankFn scatter_body(int iters) {
  return [iters](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    std::vector<int> source;
    if (ctx.rank() == 0) {
      source.resize(16 * static_cast<std::size_t>(ctx.nranks()));
      std::iota(source.begin(), source.end(), 0);
    }
    std::vector<int> mine(16, -1);
    for (int it = 0; it < iters; ++it) {
      mpi::scatter(world, ctx.rank() == 0 ? source.data() : nullptr, 16,
                   mine.data(), 0);
      if (mine[0] != 16 * ctx.rank()) std::abort();
    }
  };
}

cid::rt::RankFn allgather_body(int iters) {
  return [iters](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    int mine = ctx.rank();
    std::vector<int> all(static_cast<std::size_t>(ctx.nranks()), -1);
    for (int it = 0; it < iters; ++it) {
      mpi::allgather(world, &mine, 1, all.data());
      if (all[static_cast<std::size_t>(ctx.nranks()) - 1] !=
          ctx.nranks() - 1) {
        std::abort();
      }
    }
  };
}

cid::rt::RankFn alltoall_body(int iters) {
  return [iters](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    std::vector<int> send(2 * static_cast<std::size_t>(ctx.nranks()));
    std::vector<int> recv(send.size(), -1);
    for (int j = 0; j < ctx.nranks(); ++j) {
      send[2 * j] = ctx.rank();
      send[2 * j + 1] = j;
    }
    for (int it = 0; it < iters; ++it) {
      mpi::alltoall(world, send.data(), 2, recv.data());
      if (recv[1] != ctx.rank()) std::abort();
    }
  };
}

cid::rt::RankFn reduce_body(int iters) {
  return [iters](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    std::vector<double> mine(8, 1.0);
    std::vector<double> total(8, 0.0);
    for (int it = 0; it < iters; ++it) {
      mpi::reduce(world, mine.data(), total.data(), 8, mpi::ReduceOp::Sum, 0);
      if (ctx.rank() == 0 && total[0] != static_cast<double>(ctx.nranks())) {
        std::abort();
      }
    }
  };
}

cid::rt::RankFn allreduce_body(int iters) {
  return [iters](RankCtx& ctx) {
    auto world = mpi::Comm::world();
    std::vector<double> mine(8, 2.0);
    std::vector<double> total(8, 0.0);
    for (int it = 0; it < iters; ++it) {
      mpi::allreduce(world, mine.data(), total.data(), 8,
                     mpi::ReduceOp::Sum);
      if (total[7] != 2.0 * ctx.nranks()) std::abort();
    }
  };
}

// ---------------------------------------------------------------------------

void write_json(const std::string& path,
                const std::vector<CollResult>& results, bool quick) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"coll\",\n  \"kind\": \"virtual_time\",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char buffer[512];
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\"name\": \"%s[%s]\", \"ranks\": %d, \"envelopes\": %llu, "
        "\"virtual_seconds\": %.9f, \"envelopes_per_sec\": %.1f, "
        "\"wall_seconds\": %.6f, \"speedup\": %.3f}%s\n",
        r.name.c_str(), r.mode.c_str(), r.ranks,
        static_cast<unsigned long long>(r.envelopes), r.makespan,
        env_per_sec(r), r.seconds, r.speedup,
        i + 1 < results.size() ? "," : "");
    out << buffer;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = cid::bench::quick_mode(argc, argv);
  std::string out_path = "BENCH_coll.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
  }

  cid::bench::print_header(
      "bench_coll - collective engine vs pre-engine algorithms",
      "CID_COLL-forced baseline vs cost-model selection, 1k/4k ranks");
  std::printf("(rates are rank-collectives per VIRTUAL second; "
              "deterministic)\n\n");

  // Quick mode changes nothing: successive iterations of a latency-bound
  // collective pipeline into each other, so the per-iteration rate depends
  // on the iteration count and trimming it would move the gated numbers.
  // The sweep is cheap enough (under a minute of host time) that CI runs
  // the full, deterministic capture and must reproduce the committed rates
  // exactly.
  const int iters = 4;
  const int heavy_iters = 1;  // O(P^2)-message baselines: one pass suffices

  std::vector<CollResult> results;
  for (int ranks : {1024, 4096}) {
    run_pair(results, "bcast", ranks, iters, bcast_body(iters));
    run_pair(results, "gather", ranks, iters, gather_body(iters));
    run_pair(results, "scatter", ranks, iters, scatter_body(iters));
    run_pair(results, "reduce", ranks, iters, reduce_body(iters));
    run_pair(results, "allreduce", ranks, iters, allreduce_body(iters));
  }
  run_pair(results, "allgather", 1024, heavy_iters,
           allgather_body(heavy_iters));
  run_pair(results, "alltoall", 1024, heavy_iters,
           alltoall_body(heavy_iters));

  cid::bench::print_row({"collective", "ranks", "vmakespan(us)", "env/vsec",
                         "wall(s)", "speedup"},
                        16);
  for (const auto& r : results) {
    char secs[32], eps[32], mk[32], sp[32];
    std::snprintf(secs, sizeof(secs), "%.3f", r.seconds);
    std::snprintf(eps, sizeof(eps), "%.3g", env_per_sec(r));
    std::snprintf(mk, sizeof(mk), "%.2f", r.makespan * 1e6);
    std::snprintf(sp, sizeof(sp), "%.2fx", r.speedup);
    cid::bench::print_row({r.name + "[" + r.mode + "]",
                           std::to_string(r.ranks), mk, eps, secs, sp},
                          16);
  }

  write_json(out_path, results, quick);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
