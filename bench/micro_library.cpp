// Real-time microbenchmarks (google-benchmark) of the library's host-side
// machinery: clause-expression parsing/evaluation, pragma parsing, derived
// datatype gather/scatter, source translation, and mailbox throughput.
// These measure actual CPU cost (not virtual time): the overheads a compiler
// or runtime adopting this design would pay.
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/core.hpp"
#include "mpi/mpi.hpp"
#include "rt/mailbox.hpp"
#include "translate/translator.hpp"
#include "wllsms/atom.hpp"

namespace {

void BM_ExprParse(benchmark::State& state) {
  for (auto _ : state) {
    auto expr = cid::core::Expr::parse("(rank-1+nprocs)%nprocs");
    benchmark::DoNotOptimize(expr);
  }
}
BENCHMARK(BM_ExprParse);

void BM_ExprEval(benchmark::State& state) {
  auto expr = cid::core::Expr::parse("(rank-1+nprocs)%nprocs").take();
  cid::core::Env env;
  env.bind("rank", 5);
  env.bind("nprocs", 337);
  for (auto _ : state) {
    auto value = expr.eval(env);
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_ExprEval);

void BM_PragmaParse(benchmark::State& state) {
  constexpr const char* kPragma =
      "#pragma comm_parameters sender(rank-1) receiver(rank+1) "
      "sendwhen(rank%2==0) receivewhen(rank%2==1) count(size) "
      "max_comm_iter(n) place_sync(END_PARAM_REGION)";
  for (auto _ : state) {
    auto parsed = cid::core::parse_pragma(kPragma);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_PragmaParse);

void BM_DatatypeGatherScalars(benchmark::State& state) {
  const auto& layout =
      cid::core::TypeLayoutOf<cid::wllsms::AtomScalarData>::get();
  auto dtype = layout.to_datatype().take();
  std::vector<cid::wllsms::AtomScalarData> atoms(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto wire = dtype.gather(atoms.data(), atoms.size());
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(dtype.payload_size()));
}
BENCHMARK(BM_DatatypeGatherScalars)->Arg(1)->Arg(16)->Arg(256);

void BM_DatatypeScatterScalars(benchmark::State& state) {
  const auto& layout =
      cid::core::TypeLayoutOf<cid::wllsms::AtomScalarData>::get();
  auto dtype = layout.to_datatype().take();
  std::vector<cid::wllsms::AtomScalarData> atoms(
      static_cast<std::size_t>(state.range(0)));
  const auto wire = dtype.gather(atoms.data(), atoms.size());
  for (auto _ : state) {
    auto status = dtype.scatter(cid::ByteSpan(wire.data(), wire.size()),
                                atoms.data(), atoms.size());
    benchmark::DoNotOptimize(status);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(dtype.payload_size()));
}
BENCHMARK(BM_DatatypeScatterScalars)->Arg(1)->Arg(16)->Arg(256);

void BM_TranslateListing3(benchmark::State& state) {
  constexpr const char* kListing3 = R"(
#pragma comm_parameters sender(rank-1) \
    receiver(rank+1) sendwhen(rank%2==0) \
    receivewhen(rank%2==1) count(size) \
    max_comm_iter(n) place_sync(END_PARAM_REGION)
{
for(p=0; p < n; p++)
#pragma comm_p2p sbuf(&buf1[p]) rbuf(&buf2[p])
{ }
}
)";
  for (auto _ : state) {
    auto result = cid::translate::translate_source(kListing3);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TranslateListing3);

void BM_MailboxPushExtract(benchmark::State& state) {
  cid::rt::Mailbox mailbox;
  for (auto _ : state) {
    cid::rt::Envelope envelope;
    envelope.src = 0;
    envelope.tag = 7;
    envelope.payload = cid::rt::Payload(cid::ByteBuffer(24));
    mailbox.push(std::move(envelope));
    cid::rt::MatchKey key;
    key.src = 0;
    key.tag = 7;
    auto out = mailbox.try_extract(key);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MailboxPushExtract);

void BM_SpmdLaunch(benchmark::State& state) {
  const auto model = cid::simnet::MachineModel::zero();
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = cid::rt::run(ranks, model, [](cid::rt::RankCtx& ctx) {
      ctx.barrier();
    });
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SpmdLaunch)
    ->Arg(2)
    ->Arg(16)
    ->Arg(64)
    ->Iterations(10)  // thread spawning dominates; bound the run time
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
