// bench_net - WALL-CLOCK cost of the transport backends.
//
// The figure benches measure virtual time; this bench measures what the
// transport seam itself costs on the host: how fast envelopes move when a
// messenger thread (thread backend) or a socket pair (tcp backend) carries
// them, against the in-process simulator baseline.
//
// Workloads (each on sim and thread; ping-pong also on tcp over loopback):
//   pingpong_*   2 ranks bouncing one small envelope N times; reports
//                round trips per second (latency = 1/value).
//   stream_*     1 sender streams N envelopes to 1 receiver draining
//                concurrently; reports envelopes per second (throughput
//                through the messenger / direct-push path).
//   halo_*       8 ranks exchange with both ring neighbours then barrier,
//                I iterations; reports iterations per second (the halo2d
//                communication skeleton without the compute).
//
// The tcp ping-pong forks a second process and speaks real sockets on
// 127.0.0.1; it is skipped (with a note) when loopback is unavailable.
//
// Emits BENCH_net.json (override with --out FILE); --quick or
// CID_BENCH_QUICK=1 shrinks the iteration counts.
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "net/sim_transport.hpp"
#include "net/tcp_transport.hpp"
#include "net/thread_transport.hpp"
#include "rt/runtime.hpp"

namespace {

using namespace cid;
using rt::RankCtx;
using simnet::MachineModel;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct WorkloadResult {
  std::string name;
  std::string unit;      ///< what `value` measures (higher is better)
  double value = 0.0;
  double seconds = 0.0;  ///< wall time of the measured section
  std::uint64_t items = 0;
};

rt::Envelope make_envelope(int src, int tag, std::uint32_t value) {
  rt::Envelope e;
  e.src = src;
  e.tag = tag;
  e.payload = rt::Payload(copy_to_buffer(as_bytes_of(value)));
  return e;
}

std::shared_ptr<net::Transport> make_backend(const std::string& which) {
  if (which == "thread") return std::make_shared<net::ThreadTransport>();
  return std::make_shared<net::SimTransport>();
}

// ---------------------------------------------------------------------------
// In-process workloads (sim / thread)
// ---------------------------------------------------------------------------

/// One envelope bounces rank 0 <-> rank 1 `rounds` times.
WorkloadResult pingpong(const std::string& backend, int rounds) {
  double elapsed = 0.0;
  rt::RunOptions options;
  options.transport = make_backend(backend);
  rt::run(
      2, MachineModel::zero(),
      [&](RankCtx& ctx) {
        rt::MatchKey key;
        key.src = 1 - ctx.rank();
        key.tag = 1;
        ctx.barrier();
        const auto start = Clock::now();
        for (int i = 0; i < rounds; ++i) {
          if (ctx.rank() == 0) {
            ctx.world().deliver(1, make_envelope(0, 1, 0));
            (void)ctx.mailbox().wait_extract(key);
          } else {
            (void)ctx.mailbox().wait_extract(key);
            ctx.world().deliver(0, make_envelope(1, 1, 0));
          }
        }
        if (ctx.rank() == 0) elapsed = seconds_since(start);
      },
      options);
  WorkloadResult out;
  out.name = "pingpong_" + backend;
  out.unit = "roundtrips_per_sec";
  out.items = static_cast<std::uint64_t>(rounds);
  out.seconds = elapsed;
  out.value = static_cast<double>(rounds) / elapsed;
  return out;
}

/// Rank 1 streams `n` envelopes; rank 0 drains them concurrently.
WorkloadResult stream(const std::string& backend, int n) {
  double elapsed = 0.0;
  rt::RunOptions options;
  options.transport = make_backend(backend);
  rt::run(
      2, MachineModel::zero(),
      [&](RankCtx& ctx) {
        ctx.barrier();
        if (ctx.rank() == 1) {
          for (int i = 0; i < n; ++i) {
            ctx.world().deliver(0, make_envelope(1, 2,
                                                 static_cast<std::uint32_t>(i)));
          }
          return;
        }
        rt::MatchKey key;
        key.src = 1;
        key.tag = 2;
        const auto start = Clock::now();
        for (int i = 0; i < n; ++i) (void)ctx.mailbox().wait_extract(key);
        elapsed = seconds_since(start);
      },
      options);
  WorkloadResult out;
  out.name = "stream_" + backend;
  out.unit = "envelopes_per_sec";
  out.items = static_cast<std::uint64_t>(n);
  out.seconds = elapsed;
  out.value = static_cast<double>(n) / elapsed;
  return out;
}

/// 8 ranks: send to both ring neighbours, receive from both, barrier;
/// `iters` iterations — the halo2d exchange skeleton without the compute.
WorkloadResult halo(const std::string& backend, int iters) {
  constexpr int kRanks = 8;
  double elapsed = 0.0;
  rt::RunOptions options;
  options.transport = make_backend(backend);
  rt::run(
      kRanks, MachineModel::zero(),
      [&](RankCtx& ctx) {
        const int next = (ctx.rank() + 1) % kRanks;
        const int prev = (ctx.rank() + kRanks - 1) % kRanks;
        rt::MatchKey from_next;
        from_next.src = next;
        from_next.tag = 3;
        rt::MatchKey from_prev;
        from_prev.src = prev;
        from_prev.tag = 3;
        ctx.barrier();
        const auto start = Clock::now();
        for (int i = 0; i < iters; ++i) {
          ctx.world().deliver(next, make_envelope(ctx.rank(), 3, 0));
          ctx.world().deliver(prev, make_envelope(ctx.rank(), 3, 0));
          (void)ctx.mailbox().wait_extract(from_next);
          (void)ctx.mailbox().wait_extract(from_prev);
          ctx.barrier();
        }
        if (ctx.rank() == 0) elapsed = seconds_since(start);
      },
      options);
  WorkloadResult out;
  out.name = "halo_" + backend;
  out.unit = "iters_per_sec";
  out.items = static_cast<std::uint64_t>(iters);
  out.seconds = elapsed;
  out.value = static_cast<double>(iters) / elapsed;
  return out;
}

// ---------------------------------------------------------------------------
// TCP loopback ping-pong (two real processes)
// ---------------------------------------------------------------------------

bool loopback_available() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  const bool ok =
      ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0;
  ::close(fd);
  return ok;
}

/// Rank 0 (this process) and rank 1 (a forked child) bounce one envelope
/// over real loopback sockets. Returns false when the bench had to be
/// skipped (no loopback / fork failure).
bool pingpong_tcp(int rounds, WorkloadResult& out) {
  if (!loopback_available()) return false;
  const auto base = static_cast<std::uint16_t>(23000 + (::getpid() % 20000));
  net::TcpConfig config;
  config.peers = {{"127.0.0.1", base},
                  {"127.0.0.1", static_cast<std::uint16_t>(base + 1)}};

  const auto program = [rounds](RankCtx& ctx) {
    rt::MatchKey key;
    key.src = 1 - ctx.rank();
    key.tag = 4;
    ctx.barrier();
    for (int i = 0; i < rounds; ++i) {
      if (ctx.rank() == 0) {
        ctx.world().deliver(1, make_envelope(0, 4, 0));
        (void)ctx.mailbox().wait_extract(key);
      } else {
        (void)ctx.mailbox().wait_extract(key);
        ctx.world().deliver(0, make_envelope(1, 4, 0));
      }
    }
    ctx.barrier();
  };

  const pid_t child = ::fork();
  if (child < 0) return false;
  if (child == 0) {
    int code = 0;
    try {
      rt::RunOptions options;
      config.proc = 1;
      options.transport = std::make_shared<net::TcpTransport>(config);
      rt::run(2, MachineModel::zero(), program, options);
    } catch (...) {
      code = 1;
    }
    std::_Exit(code);
  }
  double elapsed = 0.0;
  try {
    rt::RunOptions options;
    config.proc = 0;
    options.transport = std::make_shared<net::TcpTransport>(config);
    const auto start = Clock::now();
    rt::run(2, MachineModel::zero(), program, options);
    elapsed = seconds_since(start);
  } catch (...) {
    ::waitpid(child, nullptr, 0);
    return false;
  }
  int status = -1;
  ::waitpid(child, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) return false;
  out.name = "pingpong_tcp";
  out.unit = "roundtrips_per_sec";
  out.items = static_cast<std::uint64_t>(rounds);
  // Includes the rendezvous + teardown barriers; with hundreds of rounds
  // the per-round socket cost dominates, which is the number we want.
  out.seconds = elapsed;
  out.value = static_cast<double>(rounds) / elapsed;
  return true;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

void write_json(const std::string& path,
                const std::vector<WorkloadResult>& results, bool quick,
                bool tcp_skipped) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"net\",\n  \"kind\": \"wall_clock\",\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"tcp_skipped\": " << (tcp_skipped ? "true" : "false") << ",\n";
  out << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"name\": \"%s\", \"unit\": \"%s\", \"value\": %.1f, "
                  "\"seconds\": %.6f, \"items\": %llu}",
                  r.name.c_str(), r.unit.c_str(), r.value, r.seconds,
                  static_cast<unsigned long long>(r.items));
    out << buffer << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = cid::bench::quick_mode(argc, argv);
  std::string out_path = "BENCH_net.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
  }

  const int pp_rounds = quick ? 2000 : 20000;
  const int stream_n = quick ? 20000 : 200000;
  const int halo_iters = quick ? 500 : 5000;
  const int tcp_rounds = quick ? 200 : 2000;

  cid::bench::print_header(
      "bench_net - wall-clock transport backend cost",
      "round trips, streamed envelopes and halo iterations per second");
  std::printf("(HOST wall-clock time - machine-dependent, not virtual)\n\n");

  std::vector<WorkloadResult> results;
  for (const char* backend : {"sim", "thread"}) {
    results.push_back(pingpong(backend, pp_rounds));
    results.push_back(stream(backend, stream_n));
    results.push_back(halo(backend, halo_iters));
  }
  WorkloadResult tcp;
  const bool tcp_ok = pingpong_tcp(tcp_rounds, tcp);
  if (tcp_ok) {
    results.push_back(tcp);
  } else {
    std::printf("pingpong_tcp: skipped (no loopback networking)\n");
  }

  cid::bench::print_row({"workload", "items", "seconds", "throughput"});
  for (const auto& r : results) {
    char value[64];
    std::snprintf(value, sizeof(value), "%.3g %s", r.value, r.unit.c_str());
    char secs[32];
    std::snprintf(secs, sizeof(secs), "%.4f", r.seconds);
    cid::bench::print_row({r.name, std::to_string(r.items), secs, value}, 24);
  }
  write_json(out_path, results, quick, !tcp_ok);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
